#include "core/incremental_cost.h"

#include <cassert>

namespace dmfb {

IncrementalPlacementState::IncrementalPlacementState(
    Placement placement, const CostEvaluator& evaluator)
    : placement_(std::move(placement)),
      weights_(evaluator.weights()),
      defects_(evaluator.defects()),
      fti_(evaluator.fti_options()) {
  const int count = placement_.module_count();
  const auto& pairs = placement_.conflicting_pairs();

  footprints_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    footprints_.push_back(placement_.module(i).footprint());
  }

  pair_entries_.assign(pairs.size(), PairEntry{});
  pair_offsets_.assign(static_cast<std::size_t>(count) + 1, 0);
  for (const auto& [i, j] : pairs) {
    ++pair_offsets_[static_cast<std::size_t>(i) + 1];
    ++pair_offsets_[static_cast<std::size_t>(j) + 1];
  }
  for (int i = 0; i < count; ++i) {
    pair_offsets_[static_cast<std::size_t>(i) + 1] +=
        pair_offsets_[static_cast<std::size_t>(i)];
  }
  pair_adjacency_.assign(2 * pairs.size(), 0);
  {
    std::vector<int> cursor(pair_offsets_.begin(), pair_offsets_.end() - 1);
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      const auto& [i, j] = pairs[p];
      pair_adjacency_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(i)]++)] = static_cast<int>(p);
      pair_adjacency_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(j)]++)] = static_cast<int>(p);
      pair_entries_[p].i = i;
      pair_entries_[p].j = j;
      pair_entries_[p].overlap =
          footprints_[static_cast<std::size_t>(i)].overlap_area(
              footprints_[static_cast<std::size_t>(j)]);
      overlap_total_ += pair_entries_[p].overlap;
    }
  }
  pair_stamp_.assign(pairs.size(), 0);

  // Prefix-summed defect counts over the defects' bounding rect (the
  // evaluator already maintains the rect), so a footprint's hit count is
  // one O(1) rectangle query.
  defect_bounds_ = evaluator.defect_bounds();
  if (!defects_.empty()) {
    const int w = defect_bounds_.width;
    const int h = defect_bounds_.height;
    std::vector<long long> counts(static_cast<std::size_t>(w) * h, 0);
    for (const Point& d : defects_) {
      counts[static_cast<std::size_t>(d.y - defect_bounds_.y) * w +
             (d.x - defect_bounds_.x)] += 1;
    }
    defect_sums_.assign(static_cast<std::size_t>(w + 1) * (h + 1), 0);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        defect_sums_[static_cast<std::size_t>(y + 1) * (w + 1) + (x + 1)] =
            defect_sums_[static_cast<std::size_t>(y) * (w + 1) + (x + 1)] +
            defect_sums_[static_cast<std::size_t>(y + 1) * (w + 1) + x] -
            defect_sums_[static_cast<std::size_t>(y) * (w + 1) + x] +
            counts[static_cast<std::size_t>(y) * w + x];
      }
    }
  }

  module_defect_hits_.assign(static_cast<std::size_t>(count), 0);
  outside_.assign(static_cast<std::size_t>(count), false);
  for (int i = 0; i < count; ++i) {
    const Rect& fp = footprints_[static_cast<std::size_t>(i)];
    if (weights_.beta != 0.0) insert_extents(fp);
    module_defect_hits_[static_cast<std::size_t>(i)] = defect_hits(fp);
    defect_total_ += module_defect_hits_[static_cast<std::size_t>(i)];
    if (!fp.within_bounds(placement_.canvas_width(),
                          placement_.canvas_height())) {
      outside_[static_cast<std::size_t>(i)] = true;
      ++outside_count_;
    }
  }
  bbox_ = placement_.bounding_box();

  // Routing-pressure caches (gamma != 0 only): CSR adjacency of links by
  // incident module, built like the pair adjacency above.
  if (weights_.gamma != 0.0 && !evaluator.route_links().empty()) {
    const auto& links = evaluator.route_links();
    link_offsets_.assign(static_cast<std::size_t>(count) + 1, 0);
    link_entries_.reserve(links.size());
    for (const RouteLink& link : links) {
      if (link.target_module < 0 || link.target_module >= count ||
          link.source_module >= count) {
        throw std::invalid_argument(
            "IncrementalPlacementState: route link module index out of "
            "range (links extracted for a different schedule?)");
      }
      link_entries_.push_back(LinkEntry{link, 0});
      ++link_offsets_[static_cast<std::size_t>(link.target_module) + 1];
      if (link.source_module >= 0 &&
          link.source_module != link.target_module) {
        ++link_offsets_[static_cast<std::size_t>(link.source_module) + 1];
      }
    }
    for (int i = 0; i < count; ++i) {
      link_offsets_[static_cast<std::size_t>(i) + 1] +=
          link_offsets_[static_cast<std::size_t>(i)];
    }
    link_adjacency_.assign(
        static_cast<std::size_t>(link_offsets_.back()), 0);
    std::vector<int> cursor(link_offsets_.begin(), link_offsets_.end() - 1);
    for (std::size_t p = 0; p < link_entries_.size(); ++p) {
      const RouteLink& link = link_entries_[p].link;
      link_adjacency_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(link.target_module)]++)] =
          static_cast<int>(p);
      if (link.source_module >= 0 &&
          link.source_module != link.target_module) {
        link_adjacency_[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(link.source_module)]++)] =
            static_cast<int>(p);
      }
    }
    for (auto& entry : link_entries_) {
      entry.cost = link_cost(entry);
      pressure_total_ += entry.cost;
    }
    link_stamp_.assign(link_entries_.size(), 0);
  }

  if (weights_.beta != 0.0) {
    FtiIncrementalEvaluator::Backup scratch;
    fti_.update(placement_, bbox_, nullptr, 0, scratch);
    covered_cells_ = fti_.covered_cells();
  }
  value_ = value_from_tallies();
}

CostBreakdown IncrementalPlacementState::breakdown() const {
  CostBreakdown result;
  result.area_cells = bbox_.area();
  result.overlap_cells = overlap_total_;
  result.defect_cells = defect_total_;
  if (weights_.beta != 0.0) {
    const long long total = bbox_.area();
    result.fti =
        total == 0 ? 0.0 : static_cast<double>(covered_cells_) / total;
  }
  result.route_pressure = pressure_total_;
  result.value = value_;
  return result;
}

double IncrementalPlacementState::value_of(long long area_cells,
                                           long long overlap_cells,
                                           long long defect_cells,
                                           double fti,
                                           long long route_pressure) const {
  // Exactly CostEvaluator::evaluate's expression (term order included —
  // base objective, then the gamma term appended outside it), so copy-
  // and delta-engine costs agree bit for bit.
  double value = weights_.alpha * static_cast<double>(area_cells) +
                 weights_.lambda_overlap * static_cast<double>(overlap_cells) +
                 weights_.lambda_defect * static_cast<double>(defect_cells) -
                 weights_.beta * fti;
  if (weights_.gamma != 0.0) {
    value += weights_.gamma * static_cast<double>(route_pressure);
  }
  return value;
}

double IncrementalPlacementState::value_from_tallies() const {
  double fti = 0.0;
  if (weights_.beta != 0.0) {
    const long long total = bbox_.area();
    fti = total == 0 ? 0.0 : static_cast<double>(covered_cells_) / total;
  }
  return value_of(bbox_.area(), overlap_total_, defect_total_, fti,
                  pressure_total_);
}

long long IncrementalPlacementState::link_cost(const LinkEntry& entry) const {
  const Rect& target =
      footprints_[static_cast<std::size_t>(entry.link.target_module)];
  const Rect& source =
      entry.link.source_module >= 0
          ? footprints_[static_cast<std::size_t>(entry.link.source_module)]
          : target;
  return entry.link.weight *
         detail::route_link_distance(entry.link, source, target,
                                     placement_.canvas_width(),
                                     placement_.canvas_height());
}

long long IncrementalPlacementState::defect_hits(const Rect& footprint) const {
  if (defects_.empty()) return 0;
  const Rect r = footprint.intersection(defect_bounds_);
  if (r.empty()) return 0;
  const int w = defect_bounds_.width;
  const int x1 = r.x - defect_bounds_.x;
  const int y1 = r.y - defect_bounds_.y;
  const int x2 = x1 + r.width;
  const int y2 = y1 + r.height;
  const auto at = [&](int x, int y) {
    return defect_sums_[static_cast<std::size_t>(y) * (w + 1) + x];
  };
  return at(x2, y2) - at(x1, y2) - at(x2, y1) + at(x1, y1);
}

Rect IncrementalPlacementState::bounding_box_from_extents() const {
  if (lefts_.empty()) return Rect{};
  const int left = lefts_.min();
  const int right = rights_.max();
  const int bottom = bottoms_.min();
  const int top = tops_.max();
  return Rect{left, bottom, right - left, top - bottom};
}

void IncrementalPlacementState::erase_extents(const Rect& footprint) {
  lefts_.erase(footprint.x);
  rights_.erase(footprint.right());
  bottoms_.erase(footprint.y);
  tops_.erase(footprint.top());
}

void IncrementalPlacementState::insert_extents(const Rect& footprint) {
  lefts_.insert(footprint.x);
  rights_.insert(footprint.right());
  bottoms_.insert(footprint.y);
  tops_.insert(footprint.top());
}

double IncrementalPlacementState::propose(const PlacementMove& move) {
  // Clamped displacements frequently land exactly where the module
  // already is (window span 1 at low temperature); such a move changes
  // nothing, so the delta is 0 without touching a single cache — the FTI
  // path in particular skips its whole patch.
  bool noop = true;
  for (int c = 0; c < move.count && noop; ++c) {
    const PlacedModule& m =
        placement_.modules()[static_cast<std::size_t>(move.changes[c].index)];
    noop = m.anchor == move.changes[c].anchor &&
           m.rotated == move.changes[c].rotated;
  }
  return propose_known(move, noop);
}

double IncrementalPlacementState::propose_random(int window_span,
                                                 const MoveOptions& options,
                                                 Rng& rng) {
  // Exactly generate_random_move_with_span's draw order, fused with the
  // no-op determination (anchors and orientations are at hand anyway).
  PlacementMove move;
  bool noop = true;
  const int count = placement_.module_count();
  if (count > 0) {
    const bool single =
        count < 2 || rng.next_bool(options.single_move_probability);
    const bool rotate = rng.next_bool(options.rotate_probability);
    if (single) {
      const int index = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(count)));
      const PlacedModule& m =
          placement_.modules()[static_cast<std::size_t>(index)];
      bool rotated = m.rotated;
      const bool flipped =
          rotate && detail::flipped_orientation(placement_, index, rotated);
      const Point target{m.anchor.x + rng.next_int(-window_span, window_span),
                         m.anchor.y + rng.next_int(-window_span, window_span)};
      move.kind = flipped ? MoveKind::kDisplaceRotate : MoveKind::kDisplace;
      move.count = 1;
      move.changes[0] = ModuleMove{
          index, detail::clamp_anchor(placement_, index, rotated, target),
          rotated};
      noop = move.changes[0].anchor == m.anchor && rotated == m.rotated;
    } else {
      const int i = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(count)));
      int j = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(count - 1)));
      if (j >= i) ++j;
      const PlacedModule& mi =
          placement_.modules()[static_cast<std::size_t>(i)];
      const PlacedModule& mj =
          placement_.modules()[static_cast<std::size_t>(j)];
      bool rotated_i = mi.rotated;
      bool rotated_j = mj.rotated;
      bool flipped = false;
      if (rotate) {
        // Move (iv): at least one module of the pair changes orientation.
        if (rng.next_bool(0.5)) {
          flipped = detail::flipped_orientation(placement_, i, rotated_i);
        } else {
          flipped = detail::flipped_orientation(placement_, j, rotated_j);
        }
      }
      move.kind = flipped ? MoveKind::kSwapRotate : MoveKind::kSwap;
      move.count = 2;
      move.changes[0] = ModuleMove{
          i, detail::clamp_anchor(placement_, i, rotated_i, mj.anchor),
          rotated_i};
      move.changes[1] = ModuleMove{
          j, detail::clamp_anchor(placement_, j, rotated_j, mi.anchor),
          rotated_j};
      noop = move.changes[0].anchor == mi.anchor &&
             rotated_i == mi.rotated &&
             move.changes[1].anchor == mj.anchor && rotated_j == mj.rotated;
    }
  }
  return propose_known(move, noop);
}

double IncrementalPlacementState::propose_known(const PlacementMove& move,
                                                bool noop) {
  assert(!pending_.active);

  if (noop) {
    Pending& pending = pending_;
    pending.active = true;
    pending.eager = false;
    pending.move.kind = move.kind;  // telemetry: last_move_kind()
    pending.move.count = 0;
    pending.new_pair_overlaps.clear();
    pending.new_link_costs.clear();
    pending.cand_overlap_total = overlap_total_;
    pending.cand_defect_total = defect_total_;
    pending.cand_pressure_total = pressure_total_;
    pending.cand_outside_count = outside_count_;
    pending.cand_bbox = bbox_;
    pending.cand_value = value_;
    pending.scanned_bbox = false;
    return 0.0;
  }

  if (weights_.beta != 0.0) return propose_eager(move);

  // beta = 0 fast path: price the move against hypothetical footprints
  // without touching placement or caches. commit() applies the staged
  // values; revert() just drops them.
  Pending& pending = pending_;
  pending.active = true;
  pending.eager = false;
  pending.move = move;
  pending.new_pair_overlaps.clear();
  pending.new_link_costs.clear();

  long long cand_overlap = overlap_total_;
  long long cand_defect = defect_total_;
  long long cand_pressure = pressure_total_;
  int cand_outside = outside_count_;
  // Does the committed bounding box survive the move? (An interior module
  // moving within the box cannot change it; only then is the scan below
  // skippable.)
  bool bbox_survives = true;

  for (int c = 0; c < move.count; ++c) {
    const ModuleMove& change = move.changes[c];
    const std::size_t idx = static_cast<std::size_t>(change.index);
    const Rect fp = footprint_rect(placement_.module(change.index).spec,
                                   change.anchor, change.rotated);
    // footprints_ takes the hypothetical value now so the overlap and
    // bbox pricing below read it branch-free; revert() restores.
    pending.old_footprints[c] = footprints_[idx];
    footprints_[idx] = fp;

    const Rect& old_fp = pending.old_footprints[c];
    bbox_survives = bbox_survives &&
                    old_fp.x > bbox_.x && old_fp.y > bbox_.y &&
                    old_fp.right() < bbox_.right() &&
                    old_fp.top() < bbox_.top() && bbox_.contains(fp);

    const bool outside = !fp.within_bounds(placement_.canvas_width(),
                                           placement_.canvas_height());
    pending.new_outside[c] = outside;
    cand_outside +=
        static_cast<int>(outside) - static_cast<int>(outside_[idx]);
    long long hits = 0;
    if (!defects_.empty()) {
      hits = defect_hits(fp);
      cand_defect += hits - module_defect_hits_[idx];
    }
    pending.new_defect_hits[c] = hits;
  }

  const auto price_pairs_of = [&](int module_index, bool stamped) {
    const std::size_t module = static_cast<std::size_t>(module_index);
    const int begin = pair_offsets_[module];
    const int end = pair_offsets_[module + 1];
    for (int a = begin; a < end; ++a) {
      const int p = pair_adjacency_[static_cast<std::size_t>(a)];
      const std::size_t q = static_cast<std::size_t>(p);
      if (stamped) {
        if (pair_stamp_[q] == stamp_) continue;
        pair_stamp_[q] = stamp_;
      }
      const PairEntry& entry = pair_entries_[q];
      const long long overlap =
          footprints_[static_cast<std::size_t>(entry.i)].overlap_area(
              footprints_[static_cast<std::size_t>(entry.j)]);
      pending.new_pair_overlaps.emplace_back(p, overlap);
      cand_overlap += overlap - entry.overlap;
    }
  };
  if (move.count == 1) {
    // A single-module move cannot visit a pair twice: no stamp dedup.
    price_pairs_of(move.changes[0].index, /*stamped=*/false);
  } else {
    ++stamp_;
    for (int c = 0; c < move.count; ++c) {
      price_pairs_of(move.changes[c].index, /*stamped=*/true);
    }
  }

  // Re-price the routing-pressure links incident to the touched modules
  // (a link between both touched modules updates once, via the stamp).
  if (!link_entries_.empty()) {
    const auto price_links_of = [&](int module_index, bool stamped) {
      const std::size_t module = static_cast<std::size_t>(module_index);
      const int begin = link_offsets_[module];
      const int end = link_offsets_[module + 1];
      for (int a = begin; a < end; ++a) {
        const int p = link_adjacency_[static_cast<std::size_t>(a)];
        const std::size_t q = static_cast<std::size_t>(p);
        if (stamped) {
          if (link_stamp_[q] == stamp_) continue;
          link_stamp_[q] = stamp_;
        }
        const long long cost = link_cost(link_entries_[q]);
        pending.new_link_costs.emplace_back(p, cost);
        cand_pressure += cost - link_entries_[q].cost;
      }
    };
    if (move.count == 1) {
      price_links_of(move.changes[0].index, /*stamped=*/false);
    } else {
      // Reuses the stamp the pair pass above advanced; link_stamp_ is a
      // separate array, so every entry still reads as unvisited.
      for (int c = 0; c < move.count; ++c) {
        price_links_of(move.changes[c].index, /*stamped=*/true);
      }
    }
  }

  // Candidate bounding box: unchanged for interior moves, else a short
  // branch-free scan over the (already updated) footprints. At placement
  // sizes this beats maintaining extent structures, and a rejected
  // proposal writes almost nothing.
  Rect cand_bbox = bbox_;
  const int count = placement_.module_count();
  if (!bbox_survives && count > 0) {
    int left = std::numeric_limits<int>::max();
    int right = std::numeric_limits<int>::min();
    int bottom = std::numeric_limits<int>::max();
    int top = std::numeric_limits<int>::min();
    for (const Rect& fp : footprints_) {
      left = std::min(left, fp.x);
      right = std::max(right, fp.right());
      bottom = std::min(bottom, fp.y);
      top = std::max(top, fp.top());
    }
    cand_bbox = Rect{left, bottom, right - left, top - bottom};
  }

  pending.cand_overlap_total = cand_overlap;
  pending.cand_defect_total = cand_defect;
  pending.cand_pressure_total = cand_pressure;
  pending.cand_outside_count = cand_outside;
  pending.cand_bbox = cand_bbox;
  pending.scanned_bbox = !bbox_survives && count > 0;
  pending.cand_value =
      value_of(cand_bbox.area(), cand_overlap, cand_defect, 0.0,
               cand_pressure);
  return pending.cand_value - value_;
}

double IncrementalPlacementState::propose_eager(const PlacementMove& move) {
  ++stamp_;

  Pending& pending = pending_;
  pending.active = true;
  pending.eager = true;
  pending.move = move;
  pending.old_overlap_total = overlap_total_;
  pending.old_defect_total = defect_total_;
  pending.old_pressure_total = pressure_total_;
  pending.old_outside_count = outside_count_;
  pending.old_covered = covered_cells_;
  pending.old_bbox = bbox_;
  pending.old_value = value_;
  pending.old_pair_overlaps.clear();
  pending.old_link_costs.clear();

  for (int c = 0; c < move.count; ++c) {
    const ModuleMove& change = move.changes[c];
    const std::size_t idx = static_cast<std::size_t>(change.index);
    const PlacedModule& m = placement_.module(change.index);
    pending.old_modules[c] =
        TouchedModule{change.index, m.anchor,
                      m.rotated, outside_[idx],
                      module_defect_hits_[idx], footprints_[idx]};

    erase_extents(footprints_[idx]);
    placement_.set_position(change.index, change.anchor, change.rotated);
    const Rect fp = footprint_rect(m.spec, change.anchor, change.rotated);
    footprints_[idx] = fp;
    insert_extents(fp);

    const bool outside = !fp.within_bounds(placement_.canvas_width(),
                                           placement_.canvas_height());
    if (outside != outside_[idx]) {
      outside_count_ += outside ? 1 : -1;
      outside_[idx] = outside;
    }

    if (!defects_.empty()) {
      const long long hits = defect_hits(fp);
      defect_total_ += hits - module_defect_hits_[idx];
      module_defect_hits_[idx] = hits;
    }
  }

  // Re-price only the conflicting pairs a touched module participates in
  // (stamped so a pair shared by both touched modules updates once, after
  // both footprints moved).
  for (int c = 0; c < move.count; ++c) {
    const std::size_t module = static_cast<std::size_t>(move.changes[c].index);
    const int begin = pair_offsets_[module];
    const int end = pair_offsets_[module + 1];
    for (int a = begin; a < end; ++a) {
      const int p = pair_adjacency_[static_cast<std::size_t>(a)];
      PairEntry& entry = pair_entries_[static_cast<std::size_t>(p)];
      if (pair_stamp_[static_cast<std::size_t>(p)] == stamp_) continue;
      pair_stamp_[static_cast<std::size_t>(p)] = stamp_;
      const long long overlap =
          footprints_[static_cast<std::size_t>(entry.i)].overlap_area(
              footprints_[static_cast<std::size_t>(entry.j)]);
      pending.old_pair_overlaps.emplace_back(p, entry.overlap);
      overlap_total_ += overlap - entry.overlap;
      entry.overlap = overlap;
    }
  }

  // Re-price touched routing-pressure links in place (same stamp; the
  // link stamps live in their own array, so reuse is safe).
  if (!link_entries_.empty()) {
    for (int c = 0; c < move.count; ++c) {
      const std::size_t module =
          static_cast<std::size_t>(move.changes[c].index);
      const int begin = link_offsets_[module];
      const int end = link_offsets_[module + 1];
      for (int a = begin; a < end; ++a) {
        const int p = link_adjacency_[static_cast<std::size_t>(a)];
        LinkEntry& entry = link_entries_[static_cast<std::size_t>(p)];
        if (link_stamp_[static_cast<std::size_t>(p)] == stamp_) continue;
        link_stamp_[static_cast<std::size_t>(p)] = stamp_;
        const long long cost = link_cost(entry);
        pending.old_link_costs.emplace_back(p, entry.cost);
        pressure_total_ += cost - entry.cost;
        entry.cost = cost;
      }
    }
  }

  bbox_ = bounding_box_from_extents();

  if (weights_.beta != 0.0) {
    // The evaluator patches exactly what the move touched: each moved
    // footprint's symmetric difference dirties its temporal neighbours'
    // occupancy/anchor grids, and the per-cell coverage state follows —
    // O(dirty) integer increments, inverted bit-exactly by revert().
    FtiIncrementalEvaluator::MovedModule fti_moves[2];
    for (int c = 0; c < move.count; ++c) {
      fti_moves[c].index = move.changes[c].index;
      fti_moves[c].from = pending.old_modules[c].footprint;
      fti_moves[c].to =
          footprints_[static_cast<std::size_t>(move.changes[c].index)];
    }
    fti_.update(placement_, bbox_, fti_moves, move.count,
                pending.fti_backup);
    covered_cells_ = fti_.covered_cells();
  }

  value_ = value_from_tallies();
  return value_ - pending.old_value;
}

double IncrementalPlacementState::commit() {
  Pending& pending = pending_;
  assert(pending.active);
  if (pending_virtual_) {
    // A still-valid speculative serve: nothing is staged yet, so
    // materialize by re-running the full pricing (advances no rng draws;
    // the delta is the served one by speculation_valid's contract), then
    // commit normally. Acceptances are the rare branch, so the extra
    // pricing stays off the hot path.
    pending_virtual_ = false;
    pending.active = false;
    const PlacementMove move = pending.move;
    propose(move);
  }
  pending.active = false;
  if (pending.eager) return value_;

  // Speculation epochs (engaged by the first speculate_batch call):
  // high-water-mark what this acceptance touches, so later activate()
  // calls can tell stale prices from live ones.
  if (!module_epoch_.empty() && pending.move.count > 0) {
    ++commit_epoch_;
    for (int c = 0; c < pending.move.count; ++c) {
      module_epoch_[static_cast<std::size_t>(pending.move.changes[c].index)] =
          commit_epoch_;
    }
    if (!(pending.cand_bbox == bbox_)) bbox_epoch_ = commit_epoch_;
  }

  // Lazy path: apply the staged move and candidate tallies (footprints_
  // was already updated by propose()).
  for (int c = 0; c < pending.move.count; ++c) {
    const ModuleMove& change = pending.move.changes[c];
    const std::size_t idx = static_cast<std::size_t>(change.index);
    placement_.set_position(change.index, change.anchor, change.rotated);
    outside_[idx] = pending.new_outside[c];
    module_defect_hits_[idx] = pending.new_defect_hits[c];
  }
  for (const auto& [p, overlap] : pending.new_pair_overlaps) {
    pair_entries_[static_cast<std::size_t>(p)].overlap = overlap;
  }
  for (const auto& [p, cost] : pending.new_link_costs) {
    link_entries_[static_cast<std::size_t>(p)].cost = cost;
  }
  overlap_total_ = pending.cand_overlap_total;
  defect_total_ = pending.cand_defect_total;
  pressure_total_ = pending.cand_pressure_total;
  outside_count_ = pending.cand_outside_count;
  bbox_ = pending.cand_bbox;
  value_ = pending.cand_value;
  return value_;
}

void IncrementalPlacementState::revert() {
  Pending& pending = pending_;
  assert(pending.active);
  pending.active = false;
  if (pending_virtual_) {
    // Speculative serve: nothing was mutated or staged.
    pending_virtual_ = false;
    return;
  }
  if (!pending.eager) {
    // Lazy proposals staged everything except the footprint cache.
    // Reverse order, like the eager undo: were a move ever to touch one
    // module twice, the first-saved (pre-move) footprint must win.
    for (int c = pending.move.count - 1; c >= 0; --c) {
      footprints_[static_cast<std::size_t>(pending.move.changes[c].index)] =
          pending.old_footprints[c];
    }
    return;
  }

  for (int c = pending.move.count - 1; c >= 0; --c) {
    const TouchedModule& old = pending.old_modules[c];
    const std::size_t idx = static_cast<std::size_t>(old.index);
    erase_extents(footprints_[idx]);
    placement_.set_position(old.index, old.anchor, old.rotated);
    footprints_[idx] = old.footprint;
    insert_extents(old.footprint);
    outside_[idx] = old.outside;
    module_defect_hits_[idx] = old.defect_hits;
  }
  outside_count_ = pending.old_outside_count;
  defect_total_ = pending.old_defect_total;
  for (const auto& [p, overlap] : pending.old_pair_overlaps) {
    pair_entries_[static_cast<std::size_t>(p)].overlap = overlap;
  }
  overlap_total_ = pending.old_overlap_total;
  for (const auto& [p, cost] : pending.old_link_costs) {
    link_entries_[static_cast<std::size_t>(p)].cost = cost;
  }
  pressure_total_ = pending.old_pressure_total;
  bbox_ = pending.old_bbox;
  if (weights_.beta != 0.0) {
    fti_.restore(pending.fti_backup);
    covered_cells_ = pending.old_covered;
  }
  value_ = pending.old_value;
}

int IncrementalPlacementState::speculate_batch(int window_span,
                                               const MoveOptions& options,
                                               Rng& rng, int count) {
  assert(!pending_.active);
  if (module_epoch_.empty() && placement_.module_count() > 0) {
    module_epoch_.assign(static_cast<std::size_t>(placement_.module_count()),
                         0);
  }
  batch_.clear();
  batch_deps_.clear();
  batch_epoch_ = commit_epoch_;
  // Eager (beta != 0) pricing mutates the state, so looking ahead would
  // change what later entries are priced against; the batch then only
  // pre-draws the moves and activate() prices each fresh.
  const bool lazy = weights_.beta == 0.0;
  for (int n = 0; n < count; ++n) {
    BatchEntry entry;
    entry.move =
        generate_random_move_with_span(placement_, window_span, options, rng);
    bool noop = true;
    for (int c = 0; c < entry.move.count && noop; ++c) {
      const PlacedModule& m = placement_.modules()[static_cast<std::size_t>(
          entry.move.changes[c].index)];
      noop = m.anchor == entry.move.changes[c].anchor &&
             m.rotated == entry.move.changes[c].rotated;
    }
    entry.noop = noop;
    if (lazy) {
      entry.delta = propose_known(entry.move, noop);
      entry.priced = true;
      entry.scanned_bbox = pending_.scanned_bbox;
      entry.dep_begin = static_cast<int>(batch_deps_.size());
      for (int c = 0; c < entry.move.count; ++c) {
        const int idx = entry.move.changes[c].index;
        batch_deps_.push_back(idx);
        // A noop's price (0) stays valid as long as the move still lands
        // where its modules stand — only the modules themselves matter.
        if (noop) continue;
        const std::size_t m = static_cast<std::size_t>(idx);
        for (int a = pair_offsets_[m]; a < pair_offsets_[m + 1]; ++a) {
          const PairEntry& pe = pair_entries_[static_cast<std::size_t>(
              pair_adjacency_[static_cast<std::size_t>(a)])];
          batch_deps_.push_back(pe.i == idx ? pe.j : pe.i);
        }
        if (!link_entries_.empty()) {
          for (int a = link_offsets_[m]; a < link_offsets_[m + 1]; ++a) {
            const RouteLink& link =
                link_entries_[static_cast<std::size_t>(link_adjacency_[
                    static_cast<std::size_t>(a)])].link;
            batch_deps_.push_back(link.target_module);
            if (link.source_module >= 0) {
              batch_deps_.push_back(link.source_module);
            }
          }
        }
      }
      entry.dep_end = static_cast<int>(batch_deps_.size());
      revert();
      ++spec_priced_;
    }
    batch_.push_back(entry);
  }
  return count;
}

bool IncrementalPlacementState::speculation_valid(
    const BatchEntry& entry) const {
  if (commit_epoch_ == batch_epoch_) return true;  // nothing accepted since
  if (entry.scanned_bbox) return false;  // the price read every footprint
  if (!entry.noop && bbox_epoch_ > batch_epoch_) return false;
  for (int a = entry.dep_begin; a < entry.dep_end; ++a) {
    const std::size_t m =
        static_cast<std::size_t>(batch_deps_[static_cast<std::size_t>(a)]);
    if (module_epoch_[m] > batch_epoch_) return false;
  }
  return true;
}

double IncrementalPlacementState::activate(int b) {
  assert(!pending_.active);
  assert(b >= 0 && static_cast<std::size_t>(b) < batch_.size());
  const BatchEntry& entry = batch_[static_cast<std::size_t>(b)];
  if (entry.priced && speculation_valid(entry)) {
    ++spec_hits_;
    pending_.active = true;
    pending_.eager = false;
    pending_.move = entry.move;  // last_move_kind() + materialization
    pending_virtual_ = true;
    return entry.delta;
  }
  return propose(entry.move);
}

}  // namespace dmfb
