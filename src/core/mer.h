// mer.h — maximal empty rectangles (§5.3 of the paper).
//
// A maximal empty rectangle (MER) is an all-free axis-aligned rectangle of
// cells not contained in any larger all-free rectangle. Partial
// reconfiguration relocates a module whose cell failed into an MER large
// enough for its footprint; the paper finds MERs with the staircase
// technique of Edmonds et al. ("Mining for empty spaces in large data
// sets", TCS 2003).
//
// Three implementations are provided:
//  * maximal_empty_rectangles       — staircase/histogram sweep, the paper's
//                                     fast algorithm (output-sensitive, one
//                                     stack walk per row);
//  * maximal_empty_rectangles_brute — O(W^2 H^2) reference used by property
//                                     tests and the ablation bench;
//  * largest_empty_rectangle        — convenience for tests and policies.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/geometry.h"
#include "util/matrix.h"

namespace dmfb {

/// All maximal empty rectangles of the binary grid (nonzero = occupied).
/// Deterministic order: by top row, then left column.
std::vector<Rect> maximal_empty_rectangles(const Matrix<std::uint8_t>& occupied);

/// Reference implementation enumerating every candidate rectangle.
std::vector<Rect> maximal_empty_rectangles_brute(
    const Matrix<std::uint8_t>& occupied);

/// The maximal empty rectangle of largest area (nullopt when the grid has
/// no free cell).
std::optional<Rect> largest_empty_rectangle(
    const Matrix<std::uint8_t>& occupied);

/// True when some all-empty w-by-h rectangle exists in the grid. Uses the
/// staircase enumeration; the FTI evaluator uses a prefix-sum method
/// instead (see fti.h), and tests pin the two against each other.
bool empty_rect_exists(const Matrix<std::uint8_t>& occupied, int w, int h);

}  // namespace dmfb
