#include "core/mer.h"

#include <algorithm>

#include "util/prefix_sum.h"

namespace dmfb {
namespace {

/// Sorts rectangles into the documented deterministic order.
void sort_rects(std::vector<Rect>& rects) {
  std::sort(rects.begin(), rects.end(), [](const Rect& a, const Rect& b) {
    if (a.y != b.y) return a.y < b.y;
    if (a.x != b.x) return a.x < b.x;
    if (a.width != b.width) return a.width < b.width;
    return a.height < b.height;
  });
}

}  // namespace

std::vector<Rect> maximal_empty_rectangles(
    const Matrix<std::uint8_t>& occupied) {
  const int width = occupied.width();
  const int height = occupied.height();
  std::vector<Rect> result;
  if (width == 0 || height == 0) return result;

  // heights[x] = number of consecutive empty cells in column x ending at the
  // current row y (the "staircase" profile of empty space below/at y).
  std::vector<int> heights(static_cast<std::size_t>(width), 0);

  struct StackEntry {
    int height;
    int left;  // leftmost column with profile >= height
  };
  std::vector<StackEntry> stack;

  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      heights[x] = occupied.at(x, y) != 0 ? 0 : heights[x] + 1;
    }

    // A rectangle with top edge at row y cannot extend upward iff y is the
    // last row or the row above has an occupied cell within its span.
    // row_above_occupied_prefix[x] = #occupied cells in row y+1, cols [0,x).
    std::vector<int> above_prefix(static_cast<std::size_t>(width) + 1, 0);
    if (y + 1 < height) {
      for (int x = 0; x < width; ++x) {
        above_prefix[x + 1] =
            above_prefix[x] + (occupied.at(x, y + 1) != 0 ? 1 : 0);
      }
    }
    auto up_blocked = [&](int x1, int x2) {
      if (y + 1 >= height) return true;
      return above_prefix[x2 + 1] - above_prefix[x1] > 0;
    };

    // Stack walk over the histogram. Each maximal (height, span) pair —
    // span maximal for that height, height = min over span — is produced
    // exactly once; it is a maximal empty rectangle iff it is up-blocked.
    stack.clear();
    for (int x = 0; x <= width; ++x) {
      const int h = x < width ? heights[x] : 0;
      int left = x;
      while (!stack.empty() && stack.back().height >= h) {
        const StackEntry entry = stack.back();
        stack.pop_back();
        if (entry.height > h && entry.height > 0 &&
            up_blocked(entry.left, x - 1)) {
          result.push_back(Rect{entry.left, y - entry.height + 1,
                                x - entry.left, entry.height});
        }
        left = entry.left;
      }
      if (h > 0 && (stack.empty() || stack.back().height < h)) {
        stack.push_back(StackEntry{h, left});
      }
    }
  }

  sort_rects(result);
  return result;
}

std::vector<Rect> maximal_empty_rectangles_brute(
    const Matrix<std::uint8_t>& occupied) {
  const int width = occupied.width();
  const int height = occupied.height();
  std::vector<Rect> result;
  if (width == 0 || height == 0) return result;

  const PrefixSum2D sums(occupied);
  for (int y1 = 0; y1 < height; ++y1) {
    for (int y2 = y1; y2 < height; ++y2) {
      for (int x1 = 0; x1 < width; ++x1) {
        for (int x2 = x1; x2 < width; ++x2) {
          const Rect rect{x1, y1, x2 - x1 + 1, y2 - y1 + 1};
          if (!sums.is_rect_empty(rect)) continue;
          const bool left_blocked =
              x1 == 0 || sums.occupied_in(Rect{x1 - 1, y1, 1, rect.height}) > 0;
          const bool right_blocked =
              x2 + 1 == width ||
              sums.occupied_in(Rect{x2 + 1, y1, 1, rect.height}) > 0;
          const bool down_blocked =
              y1 == 0 || sums.occupied_in(Rect{x1, y1 - 1, rect.width, 1}) > 0;
          const bool up_blocked =
              y2 + 1 == height ||
              sums.occupied_in(Rect{x1, y2 + 1, rect.width, 1}) > 0;
          if (left_blocked && right_blocked && down_blocked && up_blocked) {
            result.push_back(rect);
          }
        }
      }
    }
  }

  sort_rects(result);
  return result;
}

std::optional<Rect> largest_empty_rectangle(
    const Matrix<std::uint8_t>& occupied) {
  std::optional<Rect> best;
  for (const Rect& rect : maximal_empty_rectangles(occupied)) {
    if (!best || rect.area() > best->area()) best = rect;
  }
  return best;
}

bool empty_rect_exists(const Matrix<std::uint8_t>& occupied, int w, int h) {
  if (w <= 0 || h <= 0) return true;
  for (const Rect& rect : maximal_empty_rectangles(occupied)) {
    if (rect.width >= w && rect.height >= h) return true;
  }
  return false;
}

}  // namespace dmfb
