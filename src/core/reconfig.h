// reconfig.h — partial reconfiguration (§5.1 of the paper).
//
// When on-line testing detects a faulty cell, the module containing it is
// relocated to spare (unused) cells by reprogramming electrode voltages;
// everything else stays put. The engine finds relocation targets among the
// maximal empty rectangles of the current configuration (staircase
// algorithm, mer.h) and picks one according to a policy.
//
// This is the first — cheapest — rung of the online escalation ladder
// (sim/recovery.h): OnlineRecoveryEngine calls `recover` at the detection
// instant with the full current fault set, migrates the droplets of the
// relocated modules to their new sites, and resumes the interrupted run
// from its checkpoint. Modules in flight at the detection instant are
// never rung-1 targets unless they themselves sit on a fault: the
// relocation grid marks every time-overlapping footprint, so a target MER
// is spatially disjoint from all of them.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/fti.h"
#include "core/placement.h"
#include "util/geometry.h"

namespace dmfb {

/// How a relocation target is chosen among fitting maximal empty
/// rectangles.
enum class RelocationPolicy {
  kFirstFit,  ///< first fitting MER in deterministic scan order
  kBestFit,   ///< fitting MER of smallest area (preserves big spares)
  kNearest,   ///< anchor nearest the failed module's old anchor (fastest
              ///< droplet migration — the paper's "fast heuristic" goal)
};

/// One successful (or failed) relocation.
struct RelocationOutcome {
  int module_index = -1;
  std::string module_label;
  Point old_anchor{};
  bool old_rotated = false;
  Point new_anchor{};
  bool new_rotated = false;
  Rect target_mer{};   ///< the maximal empty rectangle the module moved into
  int move_distance = 0;  ///< Manhattan distance between anchors
};

/// Result of recovering a placement from a single-cell fault.
struct RecoveryResult {
  bool success = false;
  Placement placement;  ///< updated placement (valid iff success)
  std::vector<RelocationOutcome> relocations;
  std::string failure_reason;  ///< set when success is false
};

/// Partial-reconfiguration engine.
class Reconfigurator {
 public:
  explicit Reconfigurator(FtiOptions options = {},
                          RelocationPolicy policy = RelocationPolicy::kNearest)
      : options_(options), policy_(policy) {}

  RelocationPolicy policy() const { return policy_; }

  /// Finds a new location for module `module_index` of `placement` assuming
  /// `faulty_cell` has failed, searching within `array`. Returns nullopt
  /// when no maximal empty rectangle accommodates the module.
  std::optional<RelocationOutcome> relocate_module(const Placement& placement,
                                                   int module_index,
                                                   Point faulty_cell,
                                                   const Rect& array) const;

  /// Multi-fault variant: the relocation target must avoid every cell of
  /// `faulty_cells` (the paper's single-fault model is the 1-element case;
  /// §5.2 anticipates updating the failure model).
  std::optional<RelocationOutcome> relocate_module(
      const Placement& placement, int module_index,
      const std::vector<Point>& faulty_cells, const Rect& array) const;

  /// Relocates every module whose footprint contains `faulty_cell`
  /// (sequentially; modules sharing a cell never overlap in time, so their
  /// relocations are independent). On failure the original placement is
  /// returned unchanged with success = false.
  RecoveryResult recover(const Placement& placement, Point faulty_cell,
                         const Rect& array) const;

  /// Multi-fault recovery: every module touching any faulty cell is
  /// relocated to a region avoiding all of them. Relocated modules are
  /// re-checked (a relocation may not land on another fault), so the
  /// resulting placement, when successful, touches no faulty cell.
  RecoveryResult recover(const Placement& placement,
                         const std::vector<Point>& faulty_cells,
                         const Rect& array) const;

  /// Convenience: recover within the placement's bounding box.
  RecoveryResult recover(const Placement& placement, Point faulty_cell) const;

 private:
  FtiOptions options_;
  RelocationPolicy policy_;
};

}  // namespace dmfb
