// moves.h — the annealer's generation function (§4b-c of the paper).
//
// Four move types: (i) single-module displacement to a random location,
// (ii) displacement with orientation change, (iii) pair interchange,
// (iv) pair interchange with at least one orientation change. Probability
// p selects single-module displacement, 1-p pair interchange; the ratio is
// set experimentally (the ablation bench sweeps it). A temperature-
// controlled window discourages long displacements at low temperatures.
#pragma once

#include <iosfwd>

#include "core/placement.h"
#include "util/enum_text.h"
#include "util/rng.h"

namespace dmfb {

/// Which of the paper's four generation moves was applied.
enum class MoveKind {
  kDisplace,          ///< (i)
  kDisplaceRotate,    ///< (ii)
  kSwap,              ///< (iii)
  kSwapRotate,        ///< (iv)
};

/// Textual round-trip ("displace", "displace-rotate", "swap",
/// "swap-rotate") for logs and ablation configs; `from_string` and `>>`
/// throw std::invalid_argument on unknown text.
const char* to_string(MoveKind kind);
template <>
MoveKind from_string<MoveKind>(std::string_view text);
std::ostream& operator<<(std::ostream& os, MoveKind kind);
std::istream& operator>>(std::istream& is, MoveKind& kind);

/// Move-generation tuning.
struct MoveOptions {
  /// p — probability of a single-module move (vs. a pair interchange).
  double single_move_probability = 0.8;
  /// Among single moves, probability that the orientation also changes
  /// (move (ii) instead of (i)); likewise for pair moves (iv) vs (iii).
  double rotate_probability = 0.3;
  /// Enables the controlling window (§4c). When false, displacements are
  /// uniform over the canvas at any temperature (ablation A2).
  bool use_controlling_window = true;
  /// Minimum window half-span; the stopping criterion corresponds to the
  /// window reaching this.
  int min_window = 1;
};

/// One module's final state under a proposed move.
struct ModuleMove {
  int index = -1;
  Point anchor{0, 0};
  bool rotated = false;
};

/// A generated move as a value: the final (anchor, orientation) of every
/// touched module (one for displacements, two for pair interchanges). The
/// delta-cost annealing engine applies and undoes these without copying
/// the placement; `apply_random_move` is now a generate + apply pair, so
/// both engines draw the identical random stream and stay seed-for-seed
/// reproducible against each other.
struct PlacementMove {
  MoveKind kind = MoveKind::kDisplace;
  int count = 0;          ///< touched modules (0 on an empty placement)
  ModuleMove changes[2];  ///< entries [0, count)
};

/// Draws one random move against `placement` without mutating it.
/// `temperature_fraction` is T / T0 in [0, 1] and scales the controlling
/// window. Anchors are clamped so footprints stay inside the canvas
/// (Fig. 4(a): modules are prevented from leaving the core area).
PlacementMove generate_random_move(const Placement& placement,
                                   double temperature_fraction,
                                   const MoveOptions& options, Rng& rng);

/// Same, with the controlling-window half-span precomputed (it depends
/// only on the canvas and the temperature fraction, so the annealing
/// loop hoists it per temperature step instead of re-deriving it per
/// proposal). Consumes the exact same random draws in the same order as
/// `generate_random_move`, so both stay stream-identical.
PlacementMove generate_random_move_with_span(const Placement& placement,
                                             int window_span,
                                             const MoveOptions& options,
                                             Rng& rng);

/// Applies a generated move to `placement` (the caller re-evaluates cost).
void apply_move(Placement& placement, const PlacementMove& move);

/// Applies one random move to `placement` in place — exactly
/// `apply_move(placement, generate_random_move(placement, ...))`.
/// Returns the move kind applied.
MoveKind apply_random_move(Placement& placement, double temperature_fraction,
                           const MoveOptions& options, Rng& rng);

/// Largest legal anchor for module `index` given its current orientation.
Point max_anchor(const Placement& placement, int index);

namespace detail {

/// Clamps `anchor` so a footprint of module `index`'s spec in the given
/// orientation stays inside the canvas (a footprint too large for the
/// canvas pins to 0 instead of handing std::clamp an inverted range).
/// Shared by the move generator and the fused proposal path
/// (IncrementalPlacementState::propose_random) so both clamp
/// identically.
Point clamp_anchor(const Placement& placement, int index, bool rotated,
                   Point anchor);

/// Orientation after a requested flip; square footprints are
/// rotation-invariant so flipping them would be a null move. Returns
/// whether the orientation actually changed.
bool flipped_orientation(const Placement& placement, int index,
                         bool& rotated);

}  // namespace detail

/// Half-span of the controlling window for the given temperature fraction:
/// from the full canvas extent at T = T0 down to options.min_window.
int controlling_window_span(const Placement& placement,
                            double temperature_fraction,
                            const MoveOptions& options);

}  // namespace dmfb
