// fti.h — the Fault Tolerance Index (§5.2–5.3 of the paper).
//
// Single-cell fault model, uniform failure probability. A cell is
// *C-covered* for a placement C iff, were that cell to fail, the assay
// could still run after partial reconfiguration: for every module whose
// footprint contains the cell, the module can be relocated to a region
// that is free during the module's entire operation interval and does not
// contain the faulty cell. Unused cells are trivially covered.
//
//   FTI = (#C-covered cells) / (m * n)
//
// FTI = 1 means any single fault is survivable; FTI = 0 means none is.
//
// Implementation note: the paper's fast algorithm enumerates maximal empty
// rectangles with the staircase structure; an equivalent but
// constant-factor-faster existence test is used here for the evaluator
// (valid-position counting over a summed-area table, O(area) per module
// and O(1) per cell). Property tests pin this against the MER-based
// definition (see mer.h), and the reconfiguration engine (reconfig.h) uses
// the staircase MERs directly since it needs actual target locations.
#pragma once

#include <cstdint>
#include <optional>

#include "core/placement.h"
#include "util/geometry.h"
#include "util/matrix.h"

namespace dmfb {

/// Options shared by the FTI evaluator and the reconfiguration engine.
struct FtiOptions {
  /// Allow the relocated module to be transposed (90-degree rotation).
  bool allow_rotation = true;
};

/// Result of evaluating FTI over an array region.
struct FtiResult {
  Rect array;                     ///< region evaluated (the m x n array)
  long long covered_cells = 0;    ///< k in the paper's FTI = k/(m*n)
  long long total_cells = 0;      ///< m * n
  Matrix<std::uint8_t> covered;   ///< 1 = C-covered, indexed region-relative

  double fti() const {
    return total_cells == 0
               ? 0.0
               : static_cast<double>(covered_cells) / total_cells;
  }
};

/// Evaluates the fault tolerance of `placement` over `region` (defaults to
/// the placement's bounding box — the m x n array a designer would
/// fabricate for it). Cells of `region` outside every module are covered;
/// module cells are covered iff relocation avoiding them succeeds for every
/// module using them.
FtiResult evaluate_fti(const Placement& placement,
                       const FtiOptions& options = {},
                       std::optional<Rect> region = std::nullopt);

/// Count-only fast path (identical result, no mask allocation); used inside
/// the low-temperature annealing loop.
long long covered_cell_count(const Placement& placement,
                             const FtiOptions& options,
                             const Rect& region);

/// Definition-faithful reference: decides coverage of one cell by removing
/// each module using it and searching the maximal-empty-rectangle list for
/// a fitting relocation target. Quadratically slower; used by tests and the
/// ablation bench to validate the fast evaluator.
bool is_cell_covered_reference(const Placement& placement, Point cell,
                               const FtiOptions& options, const Rect& region);

}  // namespace dmfb
