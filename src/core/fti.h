// fti.h — the Fault Tolerance Index (§5.2–5.3 of the paper).
//
// Single-cell fault model, uniform failure probability. A cell is
// *C-covered* for a placement C iff, were that cell to fail, the assay
// could still run after partial reconfiguration: for every module whose
// footprint contains the cell, the module can be relocated to a region
// that is free during the module's entire operation interval and does not
// contain the faulty cell. Unused cells are trivially covered.
//
//   FTI = (#C-covered cells) / (m * n)
//
// FTI = 1 means any single fault is survivable; FTI = 0 means none is.
//
// Implementation note: the paper's fast algorithm enumerates maximal empty
// rectangles with the staircase structure; an equivalent but
// constant-factor-faster existence test is used here for the evaluator
// (valid-position counting over a summed-area table, O(area) per module
// and O(1) per cell). Property tests pin this against the MER-based
// definition (see mer.h), and the reconfiguration engine (reconfig.h) uses
// the staircase MERs directly since it needs actual target locations.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/placement.h"
#include "util/geometry.h"
#include "util/matrix.h"
#include "util/prefix_sum.h"

namespace dmfb {

/// Options shared by the FTI evaluator and the reconfiguration engine.
struct FtiOptions {
  /// Allow the relocated module to be transposed (90-degree rotation).
  bool allow_rotation = true;
};

/// Result of evaluating FTI over an array region.
struct FtiResult {
  Rect array;                     ///< region evaluated (the m x n array)
  long long covered_cells = 0;    ///< k in the paper's FTI = k/(m*n)
  long long total_cells = 0;      ///< m * n
  Matrix<std::uint8_t> covered;   ///< 1 = C-covered, indexed region-relative

  double fti() const {
    return total_cells == 0
               ? 0.0
               : static_cast<double>(covered_cells) / total_cells;
  }
};

/// Evaluates the fault tolerance of `placement` over `region` (defaults to
/// the placement's bounding box — the m x n array a designer would
/// fabricate for it). Cells of `region` outside every module are covered;
/// module cells are covered iff relocation avoiding them succeeds for every
/// module using them.
FtiResult evaluate_fti(const Placement& placement,
                       const FtiOptions& options = {},
                       std::optional<Rect> region = std::nullopt);

/// Count-only fast path (identical result, no mask allocation); used inside
/// the low-temperature annealing loop.
long long covered_cell_count(const Placement& placement,
                             const FtiOptions& options,
                             const Rect& region);

/// Definition-faithful reference: decides coverage of one cell by removing
/// each module using it and searching the maximal-empty-rectangle list for
/// a fitting relocation target. Quadratically slower; used by tests and the
/// ablation bench to validate the fast evaluator.
bool is_cell_covered_reference(const Placement& placement, Point cell,
                               const FtiOptions& options, const Rect& region);

// --- incremental evaluation (delta-cost annealing) --------------------

/// Per-orientation relocation query data for one module: a summed-area
/// table over the valid-anchor grid, answering "can this module relocate
/// avoiding a fault at `cell`?" in O(1). Built once per (module, region,
/// neighbour-footprint) configuration; the incremental evaluator below
/// caches these so a move re-derives only the queries it invalidated.
struct OrientationQuery {
  int w = 0;
  int h = 0;
  long long total_positions = 0;
  PrefixSum2D position_sums;

  /// Number of valid anchors whose footprint would contain `cell`
  /// (region-relative coordinates).
  long long positions_containing(Point cell) const;

  /// Relocation avoiding a fault at `cell` succeeds in this orientation iff
  /// some valid anchor's footprint does not contain the cell.
  bool relocatable_avoiding(Point cell) const;
};

/// Reusable intermediates of one relocation-query build (the retained
/// OrientationQuery prefix sums are freshly allocated; everything else is
/// recycled across builds).
struct FtiBuildScratch {
  Matrix<std::uint8_t> occupied;
  PrefixSum2D occupied_sums;
  Matrix<std::uint8_t> valid;
};

/// Builds the queries (one or two orientations) for module `index` of
/// `placement` over `region` — the per-module unit of work `evaluate_fti`
/// performs for every module on every call, and exactly what the
/// incremental evaluator caches.
std::vector<OrientationQuery> build_relocation_queries(
    const Placement& placement, int index, const Rect& region,
    const FtiOptions& options);

/// Same, with caller-owned scratch buffers (the incremental evaluator's
/// hot path: several builds per annealing proposal).
std::vector<OrientationQuery> build_relocation_queries(
    const Placement& placement, int index, const Rect& region,
    const FtiOptions& options, FtiBuildScratch& scratch);

/// Caches per-module OrientationQuery data across annealing proposals.
///
/// A module's queries are built over a region-independent *domain* (the
/// canvas, united with the evaluation region for out-of-canvas
/// placements) and depend only on the footprints of the modules it
/// time-overlaps — not on the region and not on the module's own
/// position. A move therefore dirties exactly the moved modules'
/// temporal neighbours; bounding-box changes (which happen on a large
/// share of proposals in a compact low-temperature placement) invalidate
/// nothing. Region bounds are applied at query time with clamped
/// prefix-sum reads, which test_fti/test_incremental_cost pin to be
/// cell-for-cell identical to `evaluate_fti` over the region.
/// `update` returns the displaced cache entries so the caller's revert
/// path can restore them without recomputation.
class FtiIncrementalEvaluator {
 public:
  explicit FtiIncrementalEvaluator(FtiOptions options = {})
      : options_(options) {}

  /// One module's cached relocation data.
  struct ModuleQueries {
    Rect domain;  ///< grid the orientations' prefix sums cover
    std::vector<OrientationQuery> orientations;
  };

  /// Displaced cache state from one `update`, restorable via `restore`.
  struct Backup {
    Rect region;
    bool full = false;  ///< first build: `all` holds every module's data
    std::vector<ModuleQueries> all;
    std::vector<std::pair<int, ModuleQueries>> some;
  };

  const Rect& region() const { return region_; }
  const FtiOptions& options() const { return options_; }

  /// Points the evaluator at `region` and re-derives the cached queries
  /// of the modules listed in `dirty` (plus any module whose domain no
  /// longer covers the region, e.g. after the region outgrew its slack).
  /// Everything is built on first use. The displaced data lands in
  /// `backup` (an out-param so its buffers recycle across proposals) for
  /// undo via `restore`.
  void update(const Placement& placement, const Rect& region,
              const std::vector<int>& dirty, Backup& backup);

  /// Restores the cache to its state before the matching `update`,
  /// consuming `backup`'s entries (the container itself survives for
  /// reuse).
  void restore(Backup& backup);

  /// Covered-cell count of `placement` over the cached region using the
  /// cached queries — identical to
  /// `covered_cell_count(placement, options, region())` whenever the cache
  /// is in sync with the placement.
  long long covered_cells(const Placement& placement);

 private:
  ModuleQueries build(const Placement& placement, int index,
                      const Rect& domain);

  FtiOptions options_;
  Rect region_;
  std::vector<ModuleQueries> queries_;    ///< per module
  Matrix<std::uint8_t> covered_scratch_;  ///< region-sized, reused per call
  FtiBuildScratch build_scratch_;
};

}  // namespace dmfb
