// fti.h — the Fault Tolerance Index (§5.2–5.3 of the paper).
//
// Single-cell fault model, uniform failure probability. A cell is
// *C-covered* for a placement C iff, were that cell to fail, the assay
// could still run after partial reconfiguration: for every module whose
// footprint contains the cell, the module can be relocated to a region
// that is free during the module's entire operation interval and does not
// contain the faulty cell. Unused cells are trivially covered.
//
//   FTI = (#C-covered cells) / (m * n)
//
// FTI = 1 means any single fault is survivable; FTI = 0 means none is.
//
// Implementation note: the paper's fast algorithm enumerates maximal empty
// rectangles with the staircase structure; an equivalent but
// constant-factor-faster existence test is used here for the evaluator
// (valid-position counting over a summed-area table, O(area) per module
// and O(1) per cell). Property tests pin this against the MER-based
// definition (see mer.h), and the reconfiguration engine (reconfig.h) uses
// the staircase MERs directly since it needs actual target locations.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/placement.h"
#include "util/geometry.h"
#include "util/matrix.h"
#include "util/prefix_sum.h"

namespace dmfb {

/// Options shared by the FTI evaluator and the reconfiguration engine.
struct FtiOptions {
  /// Allow the relocated module to be transposed (90-degree rotation).
  bool allow_rotation = true;
};

/// Result of evaluating FTI over an array region.
struct FtiResult {
  Rect array;                     ///< region evaluated (the m x n array)
  long long covered_cells = 0;    ///< k in the paper's FTI = k/(m*n)
  long long total_cells = 0;      ///< m * n
  Matrix<std::uint8_t> covered;   ///< 1 = C-covered, indexed region-relative

  double fti() const {
    return total_cells == 0
               ? 0.0
               : static_cast<double>(covered_cells) / total_cells;
  }
};

/// Evaluates the fault tolerance of `placement` over `region` (defaults to
/// the placement's bounding box — the m x n array a designer would
/// fabricate for it). Cells of `region` outside every module are covered;
/// module cells are covered iff relocation avoiding them succeeds for every
/// module using them.
FtiResult evaluate_fti(const Placement& placement,
                       const FtiOptions& options = {},
                       std::optional<Rect> region = std::nullopt);

/// Count-only fast path (identical result, no mask allocation); used inside
/// the low-temperature annealing loop.
long long covered_cell_count(const Placement& placement,
                             const FtiOptions& options,
                             const Rect& region);

/// Definition-faithful reference: decides coverage of one cell by removing
/// each module using it and searching the maximal-empty-rectangle list for
/// a fitting relocation target. Quadratically slower; used by tests and the
/// ablation bench to validate the fast evaluator.
bool is_cell_covered_reference(const Placement& placement, Point cell,
                               const FtiOptions& options, const Rect& region);

// --- incremental evaluation (delta-cost annealing) --------------------

/// Per-orientation relocation query data for one module: a summed-area
/// table over the valid-anchor grid, answering "can this module relocate
/// avoiding a fault at `cell`?" in O(1). Built once per (module, region,
/// neighbour-footprint) configuration; the incremental evaluator below
/// caches these so a move re-derives only the queries it invalidated.
struct OrientationQuery {
  int w = 0;
  int h = 0;
  long long total_positions = 0;
  PrefixSum2D position_sums;

  /// Number of valid anchors whose footprint would contain `cell`
  /// (region-relative coordinates).
  long long positions_containing(Point cell) const;

  /// Relocation avoiding a fault at `cell` succeeds in this orientation iff
  /// some valid anchor's footprint does not contain the cell.
  bool relocatable_avoiding(Point cell) const;
};

/// Reusable intermediates of one relocation-query build (the retained
/// OrientationQuery prefix sums are freshly allocated; everything else is
/// recycled across builds). The incremental evaluator reuses the
/// occupancy grid and the sliding-window buffers; the public
/// `build_relocation_queries` uses the occupancy prefix sums.
struct FtiBuildScratch {
  Matrix<std::uint8_t> occupied;
  PrefixSum2D occupied_sums;
  Matrix<int> row_sums;        ///< horizontal footprint-window sums
  std::vector<int> column_acc; ///< vertical sliding accumulator
};

/// Builds the queries (one or two orientations) for module `index` of
/// `placement` over `region` — the per-module unit of work `evaluate_fti`
/// performs for every module on every call, and exactly what the
/// incremental evaluator caches.
std::vector<OrientationQuery> build_relocation_queries(
    const Placement& placement, int index, const Rect& region,
    const FtiOptions& options);

/// Same, with caller-owned scratch buffers (the incremental evaluator's
/// hot path: several builds per annealing proposal).
std::vector<OrientationQuery> build_relocation_queries(
    const Placement& placement, int index, const Rect& region,
    const FtiOptions& options, FtiBuildScratch& scratch);

/// Caches per-module relocation state — and the per-cell coverage state
/// derived from it — across annealing proposals.
///
/// A module's relocation grids live over one shared, region-independent
/// *domain* (the canvas, united with the evaluation region and grown on
/// demand) and depend only on the footprints of the modules it
/// time-overlaps — not on the region and not on the module's own
/// position. They are never rebuilt on the hot path: a move patches
/// exactly the cells of the moved footprints' symmetric difference into
/// each temporal neighbour's occupancy counts and cascades 0-crossings
/// into the per-anchor bad-cell counts beneath them — O(dirty) integer
/// increments, all exactly invertible on revert. Region bounds are
/// applied at derive time with clamped anchor scans, which
/// test_fti/test_incremental_cost pin to be cell-for-cell identical to
/// `evaluate_fti` over the region.
///
/// Coverage itself is maintained incrementally too: the cells a module
/// *blocks* (cells of its footprint no relocation can avoid) form the
/// intersection of every region-valid anchor's footprint — a rectangle,
/// derivable from the anchor extremes, and empty as soon as those
/// anchors spread wider than one footprint. A per-cell counter grid
/// sums those rectangles; the covered count is region area minus its
/// nonzero cells. A region (bounding-box) drift re-derives a module's
/// block only when cheap anchor-count probes (new and intersected clamp
/// rectangles) show its valid-anchor set actually changed. `update`
/// records the displaced state so the caller's revert path can restore
/// it without recomputation.
class FtiIncrementalEvaluator {
 public:
  explicit FtiIncrementalEvaluator(FtiOptions options = {})
      : options_(options) {}

  /// One orientation's valid-anchor data over the shared domain: anchor
  /// (x, y) is valid iff a w-by-h footprint there avoids every temporal
  /// neighbour. `bad.at(x, y)` counts the occupied cells under that
  /// footprint (0 = valid); a derive scans the region-clamped anchor
  /// rectangle for count and extremes in one pass.
  struct OrientationGrid {
    int w = 0;
    int h = 0;
    Matrix<std::uint16_t> bad;  ///< occupied cells under each anchor
  };

  /// One module's cached relocation state: how many temporal-neighbour
  /// footprints cover each domain cell, and the anchor grids derived
  /// from the "covered by at least one" indicator.
  struct ModuleGrids {
    Matrix<std::uint16_t> occupancy;  ///< neighbour footprints per cell
    int orientation_count = 0;
    OrientationGrid orientations[2];
  };

  /// One module's contribution to a proposal: where it was and where it
  /// is now. `update` patches its temporal neighbours' grids with the
  /// difference; `restore` applies the exact inverse.
  struct MovedModule {
    int index = -1;
    Rect from;
    Rect to;
  };


  /// One module's cached coverage contribution: its region-valid anchor
  /// stats per orientation (count and bounding box, valid for
  /// `stats_region`) and the rectangle of cells it blocks (empty for
  /// the overwhelmingly common can-always-relocate case). Plain data —
  /// backed up by value.
  struct ModuleBlock {
    long long anchors[2] = {0, 0};  ///< region-valid anchors per orientation
    Rect anchor_bbox[2];            ///< their bounding boxes (absolute)
    Rect stats_region;              ///< region the stats were derived for
    /// Intersection of every region-valid anchor's footprint, over the
    /// orientations that have anchors (the cells those orientations
    /// cannot avoid). Meaningless when `unrelocatable`.
    Rect core;
    bool unrelocatable = false;  ///< no orientation has a region-valid anchor
    Rect block;  ///< cells currently contributed to the coverage grid

    friend bool operator==(const ModuleBlock&, const ModuleBlock&) = default;
  };

  /// Displaced cache state from one `update`, restorable via `restore`.
  struct Backup {
    Rect region;
    bool full = false;  ///< full (re)build: `all*` hold every module's data
    std::vector<ModuleGrids> all;
    std::vector<ModuleBlock> all_blocks;
    std::vector<std::pair<int, ModuleBlock>> some_blocks;
    Matrix<std::uint16_t> grid;  ///< full-build coverage grid, wholesale
    Rect grid_bounds;
    Rect domain;
    long long blocked = 0;
    MovedModule moved[2];  ///< applied deltas, inverted by `restore`
    int moved_count = 0;
  };

  const Rect& region() const { return region_; }
  const FtiOptions& options() const { return options_; }

  /// Points the evaluator at `region` and patches the cached grids with
  /// the `moved` modules' footprint deltas (dirtying exactly their
  /// temporal neighbours), then refreshes the coverage grid under those
  /// footprints and — only when a region change is shown to have
  /// changed their valid-anchor sets — anyone else's. Everything is
  /// built on first use (or when the region outgrows the shared
  /// domain). The displaced state lands in `backup` (an out-param so
  /// its buffers recycle across proposals) for undo via `restore`.
  void update(const Placement& placement, const Rect& region,
              const MovedModule* moved, int moved_count, Backup& backup);


  /// Restores the cache to its state before the matching `update`,
  /// consuming `backup`'s entries (the container itself survives for
  /// reuse).
  void restore(Backup& backup);

  /// Covered-cell count over the cached region — identical to
  /// `covered_cell_count(placement, options, region())` whenever the
  /// cache is in sync with the placement (pinned by
  /// test_incremental_cost), read off the maintained tallies in O(1).
  long long covered_cells() const {
    return region_.empty() ? 0 : region_.area() - blocked_;
  }

  /// Per-cell coverage state (absolute coordinates) — what the audit
  /// tests pin against `is_cell_covered_reference` / `evaluate_fti`.
  /// Cells outside the region are uncovered, matching the reference.
  bool is_cell_covered(Point cell) const;

 private:
  /// Builds module `index`'s grids over the shared domain from scratch
  /// (full builds only; the hot path patches instead).
  void build_module(const Placement& placement, int index);

  /// Patches module `mover`'s temporal neighbours' grids with its
  /// footprint change `from` -> `to` (the exact inverse of the swapped
  /// call). Neighbours whose occupancy actually crossed between covered
  /// and free are marked with `touch_stamp` in `visit_stamp_` — the
  /// others' anchor grids are bit-identical and need no re-derive.
  void apply_move_delta(int mover, const Rect& from, const Rect& to,
                        std::uint64_t touch_stamp = 0);

  /// Derives module `index`'s anchor stats, core and `unrelocatable`
  /// flag against the current region from its cached grids (count and
  /// extremes from one clamp scan per orientation).
  ModuleBlock derive_stats(int index) const;

  /// Fills `block` of `stats` from its core against module `index`'s
  /// current footprint clipped to the region.
  void clip_block(int index, const Placement& placement,
                  ModuleBlock& stats) const;

  /// Swaps module `index`'s grid contribution to `fresh`, recording the
  /// old state in `backup`.
  void apply_block(int index, const ModuleBlock& fresh, Backup& backup);

  // Coverage-grid plumbing: counts of blocking modules per cell over
  // `grid_bounds_`, with `blocked_` tracking its nonzero cells (all of
  // which lie inside the current region by construction).
  void grid_add(const Rect& rect);
  void grid_remove(const Rect& rect);
  void grid_ensure(const Rect& rect);

  FtiOptions options_;
  Rect region_;
  Rect domain_;  ///< shared grid extent (canvas ∪ regions seen)
  std::vector<ModuleGrids> queries_;  ///< per module
  std::vector<ModuleBlock> blocks_;   ///< per module
  std::vector<std::vector<int>> neighbors_;  ///< temporal adjacency (fixed)
  Matrix<std::uint16_t> grid_;  ///< blocking-module counts per cell
  Rect grid_bounds_;            ///< absolute rect `grid_` covers
  long long blocked_ = 0;       ///< nonzero grid cells (all inside region)
  /// Per-module visit stamps for one update()/preview() pass (refresh
  /// dedup).
  std::vector<std::uint64_t> visit_stamp_;
  std::uint64_t stamp_ = 0;
  FtiBuildScratch build_scratch_;
};

}  // namespace dmfb
