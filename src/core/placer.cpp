#include "core/placer.h"

#include <algorithm>
#include <chrono>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/greedy_placer.h"
#include "core/kamer_placer.h"
#include "core/portfolio_placer.h"
#include "core/two_stage_placer.h"
#include "util/rng.h"

namespace dmfb {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Cost breakdown of a finished (non-annealed) placement, so every backend
/// reports through the same PlacementOutcome fields.
CostBreakdown evaluate_outcome_cost(const Placement& placement,
                                    const PlacerContext& context) {
  CostEvaluator evaluator(context.weights, context.fti_options);
  evaluator.set_defects(context.defects);
  evaluator.set_route_links(context.route_links);
  return evaluator.evaluate(placement);
}

void reject_defects(const PlacerContext& context, const char* name) {
  if (!context.defects.empty()) {
    throw std::invalid_argument(std::string("placer '") + name +
                                "' does not support defect maps; use \"sa\","
                                " \"greedy\" or \"two-stage\"");
  }
}

class SaPlacer final : public Placer {
 public:
  std::string name() const override { return "sa"; }

  PlacementOutcome place(const Schedule& schedule,
                         const PlacerContext& context) const override {
    return place_simulated_annealing(schedule, sa_options_from(context));
  }
};

class GreedyPlacer final : public Placer {
 public:
  std::string name() const override { return "greedy"; }

  PlacementOutcome place(const Schedule& schedule,
                         const PlacerContext& context) const override {
    const auto start = Clock::now();
    PlacementOutcome outcome;
    outcome.placement = place_greedy(schedule, context.canvas_width,
                                     context.canvas_height, context.defects);
    outcome.cost = evaluate_outcome_cost(outcome.placement, context);
    outcome.wall_seconds = seconds_since(start);
    return outcome;
  }
};

class KamerPlacer final : public Placer {
 public:
  std::string name() const override { return "kamer"; }

  PlacementOutcome place(const Schedule& schedule,
                         const PlacerContext& context) const override {
    reject_defects(context, "kamer");
    const auto start = Clock::now();
    // KAMER places onto a fixed array; honour the canvas as that array.
    const KamerResult result =
        place_kamer(schedule, context.canvas_width, context.canvas_height,
                    context.kamer_policy, context.allow_rotation);
    if (!result.success) {
      throw std::runtime_error("kamer placement failed: " +
                               result.failure_reason);
    }
    PlacementOutcome outcome;
    outcome.placement = result.placement;
    outcome.cost = evaluate_outcome_cost(outcome.placement, context);
    outcome.wall_seconds = seconds_since(start);
    return outcome;
  }
};

class ExactPlacer final : public Placer {
 public:
  std::string name() const override { return "optimal"; }

  PlacementOutcome place(const Schedule& schedule,
                         const PlacerContext& context) const override {
    reject_defects(context, "optimal");
    const auto start = Clock::now();
    const OptimalResult result = place_optimal(schedule, context.optimal);
    PlacementOutcome outcome;
    outcome.placement = result.placement;
    outcome.cost = evaluate_outcome_cost(outcome.placement, context);
    outcome.wall_seconds = seconds_since(start);
    return outcome;
  }
};

class TwoStagePlacer final : public Placer {
 public:
  std::string name() const override { return "two-stage"; }

  PlacementOutcome place(const Schedule& schedule,
                         const PlacerContext& context) const override {
    TwoStageOptions options;
    options.stage1 = sa_options_from(context);
    options.beta = context.two_stage_beta;
    options.ltsa = context.ltsa;
    // Both stages are reproducible from the one context seed; the stage-2
    // stream is split off so it does not replay stage 1's.
    options.stage2_seed = SplitMix64(context.seed ^ 0x5a5a5a5aULL).next();
    const TwoStageOutcome outcome = place_two_stage(schedule, options);
    PlacementOutcome result = outcome.stage2;
    result.wall_seconds += outcome.stage1.wall_seconds;
    return result;
  }
};

class PortfolioPlacer final : public Placer {
 public:
  std::string name() const override { return "portfolio"; }

  PlacementOutcome place(const Schedule& schedule,
                         const PlacerContext& context) const override {
    return place_portfolio(schedule, sa_options_from(context),
                           context.portfolio);
  }
};

}  // namespace

const char* to_string(PlacerKind kind) {
  switch (kind) {
    case PlacerKind::kSa:
      return "sa";
    case PlacerKind::kGreedy:
      return "greedy";
    case PlacerKind::kKamer:
      return "kamer";
    case PlacerKind::kOptimal:
      return "optimal";
    case PlacerKind::kTwoStage:
      return "two-stage";
    case PlacerKind::kPortfolio:
      return "portfolio";
  }
  return "?";
}

template <>
PlacerKind from_string<PlacerKind>(std::string_view text) {
  if (text == "sa") return PlacerKind::kSa;
  if (text == "greedy") return PlacerKind::kGreedy;
  if (text == "kamer") return PlacerKind::kKamer;
  if (text == "optimal") return PlacerKind::kOptimal;
  if (text == "two-stage") return PlacerKind::kTwoStage;
  if (text == "portfolio") return PlacerKind::kPortfolio;
  throw std::invalid_argument(
      "unknown PlacerKind \"" + std::string(text) +
      "\" (expected one of: sa, greedy, kamer, optimal, two-stage, "
      "portfolio)");
}

std::ostream& operator<<(std::ostream& os, PlacerKind kind) {
  return os << to_string(kind);
}

std::istream& operator>>(std::istream& is, PlacerKind& kind) {
  std::string token;
  is >> token;
  kind = from_string<PlacerKind>(token);
  return is;
}

SaPlacerOptions sa_options_from(const PlacerContext& context) {
  SaPlacerOptions options;
  options.canvas_width = context.canvas_width;
  options.canvas_height = context.canvas_height;
  options.schedule = context.annealing;
  options.moves = context.moves;
  options.weights = context.weights;
  options.fti_options = context.fti_options;
  options.defects = context.defects;
  options.route_links = context.route_links;
  options.seed = context.seed;
  options.engine = context.engine;
  options.speculation_lookahead = context.speculation_lookahead;
  options.initial = context.initial_placement;
  return options;
}

PlacerRegistry::PlacerRegistry() {
  register_placer(to_string(PlacerKind::kSa),
                  [] { return std::make_unique<SaPlacer>(); });
  register_placer(to_string(PlacerKind::kGreedy),
                  [] { return std::make_unique<GreedyPlacer>(); });
  register_placer(to_string(PlacerKind::kKamer),
                  [] { return std::make_unique<KamerPlacer>(); });
  register_placer(to_string(PlacerKind::kOptimal),
                  [] { return std::make_unique<ExactPlacer>(); });
  register_placer(to_string(PlacerKind::kTwoStage),
                  [] { return std::make_unique<TwoStagePlacer>(); });
  register_placer(to_string(PlacerKind::kPortfolio),
                  [] { return std::make_unique<PortfolioPlacer>(); });
}

PlacerRegistry& PlacerRegistry::global() {
  static PlacerRegistry registry;
  return registry;
}

std::unique_ptr<Placer> make_placer(const std::string& name) {
  return PlacerRegistry::global().make(name);
}

std::unique_ptr<Placer> make_placer(PlacerKind kind) {
  return make_placer(std::string(to_string(kind)));
}

std::vector<std::string> registered_placers() {
  return PlacerRegistry::global().names();
}

}  // namespace dmfb
