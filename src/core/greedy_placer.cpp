#include "core/greedy_placer.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dmfb {
namespace {

/// True when placing module `index` at `anchor` collides with any
/// already-placed temporal neighbour or covers a defective cell.
bool collides(const Placement& placement, int index, Point anchor,
              const std::vector<bool>& placed,
              const std::vector<Point>& defects) {
  const auto& m = placement.module(index);
  const Rect fp = footprint_rect(m.spec, anchor, m.rotated);
  for (const Point& defect : defects) {
    if (fp.contains(defect)) return true;
  }
  for (int other = 0; other < placement.module_count(); ++other) {
    if (other == index || !placed[other]) continue;
    if (!m.time_overlaps(placement.module(other))) continue;
    if (fp.intersects(placement.module(other).footprint())) return true;
  }
  return false;
}

}  // namespace

void greedy_reset(Placement& placement, const std::vector<Point>& defects) {
  const int count = placement.module_count();
  std::vector<int> order(count);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const long long area_a = placement.module(a).spec.footprint_cells();
    const long long area_b = placement.module(b).spec.footprint_cells();
    if (area_a != area_b) return area_a > area_b;
    return a < b;
  });

  std::vector<bool> placed(count, false);
  for (int index : order) {
    placement.set_rotated(index, false);
    const auto& m = placement.module(index);
    const int fw = m.spec.footprint_width();
    const int fh = m.spec.footprint_height();
    bool done = false;
    for (int y = 0; y + fh <= placement.canvas_height() && !done; ++y) {
      for (int x = 0; x + fw <= placement.canvas_width() && !done; ++x) {
        const Point anchor{x, y};
        if (!collides(placement, index, anchor, placed, defects)) {
          placement.set_anchor(index, anchor);
          placed[index] = true;
          done = true;
        }
      }
    }
    if (!done) {
      throw std::runtime_error("greedy placement: module '" + m.label +
                               "' does not fit the canvas");
    }
  }
}

Placement place_greedy(const Schedule& schedule, int canvas_width,
                       int canvas_height,
                       const std::vector<Point>& defects) {
  Placement placement(schedule, canvas_width, canvas_height);
  greedy_reset(placement, defects);
  return placement;
}

}  // namespace dmfb
