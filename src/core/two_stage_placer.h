// two_stage_placer.h — the paper's enhanced, fault-aware placement (§6.2).
//
// Stage 1: fault-oblivious simulated annealing minimizes array area.
// Stage 2: low-temperature simulated annealing (LTSA) starting from the
// stage-1 placement refines for the weighted objective
// alpha*area - beta*FTI, using only single-module displacement moves so
// the compact structure is perturbed gently.
#pragma once

#include "assay/schedule.h"
#include "core/sa_placer.h"
#include "util/deprecation.h"

namespace dmfb {

/// Configuration of the two-stage flow.
struct TwoStageOptions {
  /// Stage-1 (area-only) options; weights.beta is forced to 0.
  SaPlacerOptions stage1;
  /// Fault-tolerance weight beta for stage 2 (Table 2 sweeps 10..60).
  double beta = 30.0;
  /// LTSA temperature schedule; initial temperature is low by design.
  AnnealingSchedule ltsa{/*initial_temperature=*/100.0,
                         /*cooling_rate=*/0.9,
                         /*iterations_per_module=*/400,
                         /*min_temperature=*/0.05};
  /// Seed for the stage-2 annealer (stage 1 uses stage1.seed).
  std::uint64_t stage2_seed = 0x17A2B00CULL;
};

/// Results of both stages; `stage2.placement` is the final answer.
struct TwoStageOutcome {
  PlacementOutcome stage1;
  PlacementOutcome stage2;
};

/// Runs the two-stage flow on a synthesized schedule.
DMFB_DEPRECATED("use make_placer(\"two-stage\")->place(schedule, context)")
TwoStageOutcome place_two_stage(const Schedule& schedule,
                                const TwoStageOptions& options = {});

}  // namespace dmfb
