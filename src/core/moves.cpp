#include "core/moves.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace dmfb {

const char* to_string(MoveKind kind) {
  switch (kind) {
    case MoveKind::kDisplace:
      return "displace";
    case MoveKind::kDisplaceRotate:
      return "displace-rotate";
    case MoveKind::kSwap:
      return "swap";
    case MoveKind::kSwapRotate:
      return "swap-rotate";
  }
  return "?";
}

template <>
MoveKind from_string<MoveKind>(std::string_view text) {
  if (text == "displace") return MoveKind::kDisplace;
  if (text == "displace-rotate") return MoveKind::kDisplaceRotate;
  if (text == "swap") return MoveKind::kSwap;
  if (text == "swap-rotate") return MoveKind::kSwapRotate;
  throw std::invalid_argument(
      "unknown MoveKind \"" + std::string(text) +
      "\" (expected one of: displace, displace-rotate, swap, swap-rotate)");
}

std::ostream& operator<<(std::ostream& os, MoveKind kind) {
  return os << to_string(kind);
}

std::istream& operator>>(std::istream& is, MoveKind& kind) {
  std::string token;
  is >> token;
  kind = from_string<MoveKind>(token);
  return is;
}

namespace detail {

Point clamp_anchor(const Placement& placement, int index, bool rotated,
                   Point anchor) {
  // modules()[...] over module(): index is in range by construction and
  // this sits in the proposal loop.
  const auto& spec = placement.modules()[static_cast<std::size_t>(index)].spec;
  const int w = rotated ? spec.footprint_height() : spec.footprint_width();
  const int h = rotated ? spec.footprint_width() : spec.footprint_height();
  const int max_x = std::max(0, placement.canvas_width() - w);
  const int max_y = std::max(0, placement.canvas_height() - h);
  return Point{std::clamp(anchor.x, 0, max_x), std::clamp(anchor.y, 0, max_y)};
}

bool flipped_orientation(const Placement& placement, int index,
                         bool& rotated) {
  const auto& m = placement.module(index);
  rotated = m.rotated;
  if (m.spec.square()) return false;
  rotated = !m.rotated;
  return true;
}

}  // namespace detail

using detail::clamp_anchor;
using detail::flipped_orientation;

Point max_anchor(const Placement& placement, int index) {
  const auto& m = placement.module(index);
  const Rect fp = m.footprint();
  return Point{placement.canvas_width() - fp.width,
               placement.canvas_height() - fp.height};
}

int controlling_window_span(const Placement& placement,
                            double temperature_fraction,
                            const MoveOptions& options) {
  const int full_span =
      std::max(placement.canvas_width(), placement.canvas_height());
  if (!options.use_controlling_window) return full_span;
  const double fraction = std::clamp(temperature_fraction, 0.0, 1.0);
  // Round-half-up — identical to lround for these non-negative values,
  // without the libm call (this sits in the annealer's proposal loop).
  const int span = static_cast<int>(full_span * fraction + 0.5);
  return std::max(options.min_window, span);
}

PlacementMove generate_random_move(const Placement& placement,
                                   double temperature_fraction,
                                   const MoveOptions& options, Rng& rng) {
  return generate_random_move_with_span(
      placement,
      controlling_window_span(placement, temperature_fraction, options),
      options, rng);
}

PlacementMove generate_random_move_with_span(const Placement& placement,
                                             int window_span,
                                             const MoveOptions& options,
                                             Rng& rng) {
  PlacementMove move;
  const int count = placement.module_count();
  if (count == 0) return move;

  const bool single =
      count < 2 || rng.next_bool(options.single_move_probability);
  const bool rotate = rng.next_bool(options.rotate_probability);

  if (single) {
    const int index = static_cast<int>(rng.next_below(count));
    const int span = window_span;
    const PlacedModule& m =
        placement.modules()[static_cast<std::size_t>(index)];
    const Point current = m.anchor;
    bool rotated = m.rotated;
    const bool flipped =
        rotate && flipped_orientation(placement, index, rotated);
    const Point target{current.x + rng.next_int(-span, span),
                       current.y + rng.next_int(-span, span)};
    move.kind = flipped ? MoveKind::kDisplaceRotate : MoveKind::kDisplace;
    move.count = 1;
    move.changes[0] = ModuleMove{
        index, clamp_anchor(placement, index, rotated, target), rotated};
    return move;
  }

  // Pair interchange.
  const int i = static_cast<int>(rng.next_below(count));
  int j = static_cast<int>(rng.next_below(count - 1));
  if (j >= i) ++j;

  const Point anchor_i = placement.module(i).anchor;
  const Point anchor_j = placement.module(j).anchor;
  bool rotated_i = placement.module(i).rotated;
  bool rotated_j = placement.module(j).rotated;
  bool flipped = false;
  if (rotate) {
    // Move (iv): at least one module of the pair changes orientation.
    if (rng.next_bool(0.5)) {
      flipped = flipped_orientation(placement, i, rotated_i);
    } else {
      flipped = flipped_orientation(placement, j, rotated_j);
    }
  }
  move.kind = flipped ? MoveKind::kSwapRotate : MoveKind::kSwap;
  move.count = 2;
  move.changes[0] = ModuleMove{
      i, clamp_anchor(placement, i, rotated_i, anchor_j), rotated_i};
  move.changes[1] = ModuleMove{
      j, clamp_anchor(placement, j, rotated_j, anchor_i), rotated_j};
  return move;
}

void apply_move(Placement& placement, const PlacementMove& move) {
  for (int c = 0; c < move.count; ++c) {
    const ModuleMove& change = move.changes[c];
    placement.set_position(change.index, change.anchor, change.rotated);
  }
}

MoveKind apply_random_move(Placement& placement, double temperature_fraction,
                           const MoveOptions& options, Rng& rng) {
  const PlacementMove move =
      generate_random_move(placement, temperature_fraction, options, rng);
  apply_move(placement, move);
  return move.kind;
}

}  // namespace dmfb
