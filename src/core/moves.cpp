#include "core/moves.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace dmfb {

const char* to_string(MoveKind kind) {
  switch (kind) {
    case MoveKind::kDisplace:
      return "displace";
    case MoveKind::kDisplaceRotate:
      return "displace-rotate";
    case MoveKind::kSwap:
      return "swap";
    case MoveKind::kSwapRotate:
      return "swap-rotate";
  }
  return "?";
}

template <>
MoveKind from_string<MoveKind>(std::string_view text) {
  if (text == "displace") return MoveKind::kDisplace;
  if (text == "displace-rotate") return MoveKind::kDisplaceRotate;
  if (text == "swap") return MoveKind::kSwap;
  if (text == "swap-rotate") return MoveKind::kSwapRotate;
  throw std::invalid_argument(
      "unknown MoveKind \"" + std::string(text) +
      "\" (expected one of: displace, displace-rotate, swap, swap-rotate)");
}

std::ostream& operator<<(std::ostream& os, MoveKind kind) {
  return os << to_string(kind);
}

std::istream& operator>>(std::istream& is, MoveKind& kind) {
  std::string token;
  is >> token;
  kind = from_string<MoveKind>(token);
  return is;
}

namespace {

/// Clamps `anchor` so the module's footprint stays inside the canvas.
Point clamp_anchor(const Placement& placement, int index, Point anchor) {
  const Point limit = max_anchor(placement, index);
  return Point{std::clamp(anchor.x, 0, limit.x),
               std::clamp(anchor.y, 0, limit.y)};
}

/// Flips the orientation of a (non-square) module; square footprints are
/// rotation-invariant so flipping them would be a null move.
bool try_rotate(Placement& placement, int index) {
  const auto& m = placement.module(index);
  if (m.spec.square()) return false;
  placement.set_rotated(index, !m.rotated);
  placement.set_anchor(index, clamp_anchor(placement, index, m.anchor));
  return true;
}

}  // namespace

Point max_anchor(const Placement& placement, int index) {
  const auto& m = placement.module(index);
  const Rect fp = m.footprint();
  return Point{placement.canvas_width() - fp.width,
               placement.canvas_height() - fp.height};
}

int controlling_window_span(const Placement& placement,
                            double temperature_fraction,
                            const MoveOptions& options) {
  const int full_span =
      std::max(placement.canvas_width(), placement.canvas_height());
  if (!options.use_controlling_window) return full_span;
  const double fraction = std::clamp(temperature_fraction, 0.0, 1.0);
  const int span = static_cast<int>(std::lround(full_span * fraction));
  return std::max(options.min_window, span);
}

MoveKind apply_random_move(Placement& placement, double temperature_fraction,
                           const MoveOptions& options, Rng& rng) {
  const int count = placement.module_count();
  if (count == 0) return MoveKind::kDisplace;

  const bool single =
      count < 2 || rng.next_bool(options.single_move_probability);
  const bool rotate = rng.next_bool(options.rotate_probability);

  if (single) {
    const int index = static_cast<int>(rng.next_below(count));
    const int span =
        controlling_window_span(placement, temperature_fraction, options);
    const Point current = placement.module(index).anchor;
    bool rotated = false;
    if (rotate) rotated = try_rotate(placement, index);
    const Point target{current.x + rng.next_int(-span, span),
                       current.y + rng.next_int(-span, span)};
    placement.set_anchor(index, clamp_anchor(placement, index, target));
    return rotated ? MoveKind::kDisplaceRotate : MoveKind::kDisplace;
  }

  // Pair interchange.
  const int i = static_cast<int>(rng.next_below(count));
  int j = static_cast<int>(rng.next_below(count - 1));
  if (j >= i) ++j;

  const Point anchor_i = placement.module(i).anchor;
  const Point anchor_j = placement.module(j).anchor;
  bool rotated = false;
  if (rotate) {
    // Move (iv): at least one module of the pair changes orientation.
    rotated = try_rotate(placement, rng.next_bool(0.5) ? i : j);
  }
  placement.set_anchor(i, clamp_anchor(placement, i, anchor_j));
  placement.set_anchor(j, clamp_anchor(placement, j, anchor_i));
  return rotated ? MoveKind::kSwapRotate : MoveKind::kSwap;
}

}  // namespace dmfb
