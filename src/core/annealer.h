// annealer.h — the simulated-annealing engine (Fig. 3 of the paper).
//
// Generic over the state type so the placement problem and tests can share
// it. Implements exactly the paper's loop: geometric cooling
// T_new = alpha * T_old, an inner loop of N = Na * Nm iterations per
// temperature, Metropolis acceptance (accept when dC < 0 or
// r < exp(-dC / T)), and a stopping criterion tied to the controlling
// window reaching its minimum span (expressed as a minimum temperature).
#pragma once

#include <cmath>
#include <functional>
#include <limits>

#include "util/rng.h"

namespace dmfb {

/// Annealing parameters; defaults are the paper's (§4d).
struct AnnealingSchedule {
  double initial_temperature = 10000.0;  ///< T0, "almost every move accepted"
  double cooling_rate = 0.9;             ///< alpha in T_new = alpha * T_old
  int iterations_per_module = 400;       ///< Na in N = Na * Nm
  double min_temperature = 0.05;         ///< stop when T falls below this
};

/// Counters for reporting and the ablation benches.
struct AnnealingStats {
  long long proposals = 0;
  long long accepted = 0;
  long long uphill_accepted = 0;
  int temperature_steps = 0;
  double final_temperature = 0.0;
  double best_cost = std::numeric_limits<double>::infinity();
};

/// Problem plumbing: cost of a state, neighbour generation (given the
/// current temperature as a fraction of T0, for the controlling window),
/// and which states may be recorded as "the answer" (e.g. only feasible
/// placements).
template <typename State>
struct AnnealingProblem {
  std::function<double(const State&)> cost;
  std::function<State(const State&, double /*temperature_fraction*/, Rng&)>
      neighbor;
  std::function<bool(const State&)> recordable;  ///< nullable -> always true
};

/// Runs the annealing loop and returns the best recordable state seen
/// (falling back to the initial state if no recordable state is ever
/// visited — callers that start from a feasible state always get one).
template <typename State>
State anneal(State initial, const AnnealingProblem<State>& problem,
             const AnnealingSchedule& schedule, int module_count, Rng& rng,
             AnnealingStats* stats_out = nullptr) {
  AnnealingStats stats;
  const auto recordable = [&](const State& s) {
    return !problem.recordable || problem.recordable(s);
  };

  State current = std::move(initial);
  double current_cost = problem.cost(current);

  State best = current;
  bool have_best = recordable(current);
  double best_cost = have_best ? current_cost
                               : std::numeric_limits<double>::infinity();

  const int inner_iterations =
      schedule.iterations_per_module * std::max(1, module_count);

  double temperature = schedule.initial_temperature;
  while (temperature > schedule.min_temperature) {
    const double fraction =
        schedule.initial_temperature > 0.0
            ? temperature / schedule.initial_temperature
            : 0.0;
    for (int i = 0; i < inner_iterations; ++i) {
      State candidate = problem.neighbor(current, fraction, rng);
      const double candidate_cost = problem.cost(candidate);
      const double delta = candidate_cost - current_cost;
      ++stats.proposals;
      bool accept = delta < 0.0;
      if (!accept && temperature > 0.0) {
        accept = rng.next_double() < std::exp(-delta / temperature);
        if (accept) ++stats.uphill_accepted;
      }
      if (accept) {
        current = std::move(candidate);
        current_cost = candidate_cost;
        ++stats.accepted;
        if (current_cost < best_cost && recordable(current)) {
          best = current;
          best_cost = current_cost;
          have_best = true;
        }
      }
    }
    temperature *= schedule.cooling_rate;
    ++stats.temperature_steps;
  }

  stats.final_temperature = temperature;
  stats.best_cost = best_cost;
  if (stats_out) *stats_out = stats;
  return have_best ? best : current;
}

}  // namespace dmfb
