// annealer.h — the simulated-annealing engine (Fig. 3 of the paper).
//
// Generic over the state type so the placement problem and tests can share
// it. Implements exactly the paper's loop: geometric cooling
// T_new = alpha * T_old, an inner loop of N = Na * Nm iterations per
// temperature, Metropolis acceptance (accept when dC < 0 or
// r < exp(-dC / T)), and a stopping criterion tied to the controlling
// window reaching its minimum span (expressed as a minimum temperature).
#pragma once

#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace dmfb {

/// Annealing parameters; defaults are the paper's (§4d).
struct AnnealingSchedule {
  double initial_temperature = 10000.0;  ///< T0, "almost every move accepted"
  double cooling_rate = 0.9;             ///< alpha in T_new = alpha * T_old
  int iterations_per_module = 400;       ///< Na in N = Na * Nm
  double min_temperature = 0.05;         ///< stop when T falls below this
};

/// Counters for reporting and the ablation benches.
struct AnnealingStats {
  /// Move-kind telemetry slots, indexed by static_cast<int>(MoveKind)
  /// (displace, displace-rotate, swap, swap-rotate).
  static constexpr int kMoveKindSlots = 4;

  long long proposals = 0;
  long long accepted = 0;
  long long uphill_accepted = 0;
  /// Proposal and acceptance tallies per generation move kind, so bench
  /// JSON can attribute where proposal time goes. The placer engines
  /// fill them where the kind is visible: the delta and fused engines
  /// record both; the copying engine records proposals only (its
  /// accept decision happens behind the type-erased state).
  long long proposals_by_kind[kMoveKindSlots] = {0, 0, 0, 0};
  long long accepted_by_kind[kMoveKindSlots] = {0, 0, 0, 0};
  int temperature_steps = 0;
  double final_temperature = 0.0;
  double best_cost = std::numeric_limits<double>::infinity();
  /// Wall time of the annealing loop itself (excludes the caller's
  /// initial-placement construction) and the throughput it implies —
  /// bench_perf_sa records these per engine (copy vs delta).
  double wall_seconds = 0.0;
  double proposals_per_second = 0.0;
  /// Wall time (from the loop's start) at which `best_cost` was last
  /// improved — the "time to target cost" the portfolio benches race.
  /// 0 when the initial state was never improved on.
  double seconds_to_best = 0.0;
  /// kBatched telemetry: moves priced speculatively ahead of their
  /// Metropolis decision, and how many of those prices were still valid
  /// (served without re-pricing) when the decision consumed them. The
  /// other engines leave both 0.
  long long speculated = 0;
  long long speculation_hits = 0;
  /// Replica-exchange telemetry, filled by the "portfolio" placer on its
  /// aggregate and per-replica stats; single-run engines leave both 0.
  long long exchanges_attempted = 0;
  long long exchanges_accepted = 0;
};

namespace detail {

inline double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

inline void finish_stats(AnnealingStats& stats,
                         std::chrono::steady_clock::time_point start) {
  stats.wall_seconds = detail::seconds_since(start);
  stats.proposals_per_second =
      stats.wall_seconds > 0.0
          ? static_cast<double>(stats.proposals) / stats.wall_seconds
          : 0.0;
}

}  // namespace detail

/// Problem plumbing: cost of a state, neighbour generation (given the
/// current temperature as a fraction of T0, for the controlling window),
/// and which states may be recorded as "the answer" (e.g. only feasible
/// placements).
template <typename State>
struct AnnealingProblem {
  std::function<double(const State&)> cost;
  std::function<State(const State&, double /*temperature_fraction*/, Rng&)>
      neighbor;
  std::function<bool(const State&)> recordable;  ///< nullable -> always true
};

/// Runs the annealing loop and returns the best recordable state seen
/// (falling back to the initial state if no recordable state is ever
/// visited — callers that start from a feasible state always get one).
template <typename State>
State anneal(State initial, const AnnealingProblem<State>& problem,
             const AnnealingSchedule& schedule, int module_count, Rng& rng,
             AnnealingStats* stats_out = nullptr) {
  const auto start_time = std::chrono::steady_clock::now();
  AnnealingStats stats;
  const auto recordable = [&](const State& s) {
    return !problem.recordable || problem.recordable(s);
  };

  State current = std::move(initial);
  double current_cost = problem.cost(current);

  State best = current;
  bool have_best = recordable(current);
  double best_cost = have_best ? current_cost
                               : std::numeric_limits<double>::infinity();

  const int inner_iterations =
      schedule.iterations_per_module * std::max(1, module_count);

  double temperature = schedule.initial_temperature;
  while (temperature > schedule.min_temperature) {
    const double fraction =
        schedule.initial_temperature > 0.0
            ? temperature / schedule.initial_temperature
            : 0.0;
    for (int i = 0; i < inner_iterations; ++i) {
      State candidate = problem.neighbor(current, fraction, rng);
      const double candidate_cost = problem.cost(candidate);
      const double delta = candidate_cost - current_cost;
      ++stats.proposals;
      bool accept = delta < 0.0;
      if (!accept && temperature > 0.0) {
        accept = rng.next_double() < std::exp(-delta / temperature);
        if (accept) ++stats.uphill_accepted;
      }
      if (accept) {
        current = std::move(candidate);
        current_cost = candidate_cost;
        ++stats.accepted;
        if (current_cost < best_cost && recordable(current)) {
          best = current;
          best_cost = current_cost;
          have_best = true;
          stats.seconds_to_best = detail::seconds_since(start_time);
        }
      }
    }
    temperature *= schedule.cooling_rate;
    ++stats.temperature_steps;
  }

  stats.final_temperature = temperature;
  stats.best_cost = best_cost;
  detail::finish_stats(stats, start_time);
  if (stats_out) *stats_out = stats;
  return have_best ? best : current;
}

/// In-place problem form for delta-cost annealing: the state lives behind
/// the callbacks (e.g. an IncrementalPlacementState) and is mutated by
/// `propose_delta`, then either kept (`commit`) or rolled back (`revert`).
/// No per-proposal state copy ever happens; `record_best` is invoked when
/// the committed state becomes the best recordable one seen, which is the
/// only time a caller needs to snapshot (costs one copy per improvement,
/// not one per proposal).
///
/// All five members must be set — `recordable` returns true and
/// `record_best` is a no-op when unused. (anneal_delta is templated over
/// the problem type precisely so hot callers can pass a struct of
/// concrete lambdas instead and skip std::function dispatch; this struct
/// is the type-erased convenience form.)
struct DeltaAnnealingProblem {
  /// Applies one random move in place and returns the cost delta.
  std::function<double(double /*temperature_fraction*/, Rng&)> propose_delta;
  /// Keeps the proposed move; returns the new absolute cost (recomputed by
  /// the state from its tallies, so no floating-point drift accumulates
  /// across a long run).
  std::function<double()> commit;
  /// Rolls the proposed move back.
  std::function<void()> revert;
  /// May the *committed* state be recorded as the answer?
  std::function<bool()> recordable;
  /// The committed state is the new best; snapshot it.
  std::function<void(double /*cost*/)> record_best;
};

/// The annealing loop over an in-place state. Drives the exact same
/// schedule, acceptance rule and bookkeeping as `anneal` — given a
/// bit-exact delta evaluator (IncrementalPlacementState) and the same
/// seed, the accept/reject trajectory, stats and best state are identical
/// to the copying engine's. Returns the best recordable cost seen
/// (+infinity if none was; the caller then falls back to the final
/// current state, mirroring `anneal`).
///
/// `Problem` is any type with DeltaAnnealingProblem's five members —
/// pass a struct of concrete lambdas (as sa_placer.cpp does) to let the
/// callbacks inline into the loop; the std::function-based
/// DeltaAnnealingProblem works too when type erasure is worth its cost.
template <typename Problem>
double anneal_delta(double initial_cost, const Problem& problem,
                    const AnnealingSchedule& schedule, int module_count,
                    Rng& rng, AnnealingStats* stats_out = nullptr) {
  const auto start_time = std::chrono::steady_clock::now();
  AnnealingStats stats;

  double current_cost = initial_cost;
  bool have_best = problem.recordable();
  double best_cost = have_best ? current_cost
                               : std::numeric_limits<double>::infinity();
  if (have_best) problem.record_best(best_cost);

  const int inner_iterations =
      schedule.iterations_per_module * std::max(1, module_count);

  double temperature = schedule.initial_temperature;
  while (temperature > schedule.min_temperature) {
    const double fraction =
        schedule.initial_temperature > 0.0
            ? temperature / schedule.initial_temperature
            : 0.0;
    for (int i = 0; i < inner_iterations; ++i) {
      const double delta = problem.propose_delta(fraction, rng);
      ++stats.proposals;
      bool accept = delta < 0.0;
      if (!accept && temperature > 0.0) {
        // The Metropolis draw always happens (stream compatibility with
        // `anneal`), but exp() is skipped where its value is known: a
        // zero delta always accepts (r < exp(0) = 1 for r in [0, 1)),
        // and below -746 exp() is exactly 0.0 (the subnormal floor is at
        // ~-745.13; cutting higher would drop the copy engine's accept
        // on an exactly-zero draw against a subnormal exp value).
        const double r = rng.next_double();
        if (delta == 0.0) {
          accept = true;
        } else {
          const double exponent = -delta / temperature;
          accept = exponent > -746.0 && r < std::exp(exponent);
        }
        if (accept) ++stats.uphill_accepted;
      }
      if (accept) {
        current_cost = problem.commit();
        ++stats.accepted;
        if (current_cost < best_cost && problem.recordable()) {
          best_cost = current_cost;
          have_best = true;
          problem.record_best(best_cost);
          stats.seconds_to_best = detail::seconds_since(start_time);
        }
      } else {
        problem.revert();
      }
    }
    temperature *= schedule.cooling_rate;
    ++stats.temperature_steps;
  }

  stats.final_temperature = temperature;
  stats.best_cost = best_cost;
  detail::finish_stats(stats, start_time);
  if (stats_out) *stats_out = stats;
  return have_best ? best_cost : std::numeric_limits<double>::infinity();
}

/// The fused-loop annealing variant (AnnealingEngine::kFused): the same
/// geometric schedule and Metropolis rule as `anneal_delta`, but the
/// acceptance draws come pre-batched per temperature step from a
/// dedicated stream split off `rng` at entry, and every proposal
/// consumes one — including downhill proposals, which the legacy loop
/// never draws for. Batching keeps the generator's serial dependency
/// out of the proposal's critical path and removes the data-dependent
/// draw branch; together with move generation fused into the proposal
/// (IncrementalPlacementState::propose_random) this lifts the shared
/// per-proposal floor the beta = 0 ratio was bounded by.
///
/// The trajectory is deterministic per seed but intentionally NOT the
/// legacy kDelta/kCopy stream — tests pin the variant's determinism and
/// quality, not stream equality. `Problem` has the same five members as
/// DeltaAnnealingProblem.
template <typename Problem>
double anneal_fused(double initial_cost, const Problem& problem,
                    const AnnealingSchedule& schedule, int module_count,
                    Rng& rng, AnnealingStats* stats_out = nullptr) {
  const auto start_time = std::chrono::steady_clock::now();
  AnnealingStats stats;

  double current_cost = initial_cost;
  bool have_best = problem.recordable();
  double best_cost = have_best ? current_cost
                               : std::numeric_limits<double>::infinity();
  if (have_best) problem.record_best(best_cost);

  const int inner_iterations =
      schedule.iterations_per_module * std::max(1, module_count);

  Rng metropolis_rng = rng.split();
  std::vector<double> draws(static_cast<std::size_t>(inner_iterations));

  double temperature = schedule.initial_temperature;
  while (temperature > schedule.min_temperature) {
    const double fraction =
        schedule.initial_temperature > 0.0
            ? temperature / schedule.initial_temperature
            : 0.0;
    for (double& draw : draws) draw = metropolis_rng.next_double();
    for (int i = 0; i < inner_iterations; ++i) {
      const double delta = problem.propose_delta(fraction, rng);
      ++stats.proposals;
      bool accept = delta < 0.0;
      if (!accept && temperature > 0.0) {
        const double r = draws[static_cast<std::size_t>(i)];
        if (delta == 0.0) {
          accept = true;  // r < exp(0) = 1 for r in [0, 1)
        } else {
          const double exponent = -delta / temperature;
          accept = exponent > -746.0 && r < std::exp(exponent);
        }
        if (accept) ++stats.uphill_accepted;
      }
      if (accept) {
        current_cost = problem.commit();
        ++stats.accepted;
        if (current_cost < best_cost && problem.recordable()) {
          best_cost = current_cost;
          have_best = true;
          problem.record_best(best_cost);
          stats.seconds_to_best = detail::seconds_since(start_time);
        }
      } else {
        problem.revert();
      }
    }
    temperature *= schedule.cooling_rate;
    ++stats.temperature_steps;
  }

  stats.final_temperature = temperature;
  stats.best_cost = best_cost;
  detail::finish_stats(stats, start_time);
  if (stats_out) *stats_out = stats;
  return have_best ? best_cost : std::numeric_limits<double>::infinity();
}

/// The speculative batched-proposal variant (AnnealingEngine::kBatched):
/// anneal_fused's schedule, acceptance rule and pre-batched Metropolis
/// draws, but move generation and pricing happen lookahead moves ahead
/// of the serial accept/reject decisions. `problem.speculate(fraction,
/// rng, capacity)` draws up to `capacity` moves from the stream in one
/// go (pricing each against the then-current state and remembering what
/// the price depended on); each decision then consumes one entry via
/// `problem.activate(b)`, which returns the speculative delta when no
/// intervening acceptance invalidated it and re-prices otherwise.
///
/// The move stream is consumed in the same per-move draw order as
/// kFused, so with lookahead 1 the trajectory is bit-identical to
/// anneal_fused's (pinned by test_sa_placer.cpp). Larger lookaheads
/// version the stream: a batch's moves are all generated against the
/// state at batch-fill time, so an acceptance inside a batch diverges
/// the trajectory from kFused's — deterministically per seed.
///
/// `Problem` carries speculate/activate plus DeltaAnnealingProblem's
/// commit/revert/recordable/record_best.
template <typename Problem>
double anneal_batched(double initial_cost, const Problem& problem,
                      const AnnealingSchedule& schedule, int module_count,
                      int lookahead, Rng& rng,
                      AnnealingStats* stats_out = nullptr) {
  const auto start_time = std::chrono::steady_clock::now();
  AnnealingStats stats;

  double current_cost = initial_cost;
  bool have_best = problem.recordable();
  double best_cost = have_best ? current_cost
                               : std::numeric_limits<double>::infinity();
  if (have_best) problem.record_best(best_cost);

  const int inner_iterations =
      schedule.iterations_per_module * std::max(1, module_count);
  const int batch_capacity = std::max(1, lookahead);

  Rng metropolis_rng = rng.split();
  std::vector<double> draws(static_cast<std::size_t>(inner_iterations));

  double temperature = schedule.initial_temperature;
  while (temperature > schedule.min_temperature) {
    const double fraction =
        schedule.initial_temperature > 0.0
            ? temperature / schedule.initial_temperature
            : 0.0;
    for (double& draw : draws) draw = metropolis_rng.next_double();
    int i = 0;
    while (i < inner_iterations) {
      // Batches never straddle a temperature step: the controlling
      // window (and the acceptance temperature) is constant within one.
      const int filled =
          problem.speculate(fraction, rng,
                            std::min(batch_capacity, inner_iterations - i));
      if (filled <= 0) break;  // defensive; speculate fills what it's asked
      for (int b = 0; b < filled; ++b, ++i) {
        const double delta = problem.activate(b);
        ++stats.proposals;
        bool accept = delta < 0.0;
        if (!accept && temperature > 0.0) {
          const double r = draws[static_cast<std::size_t>(i)];
          if (delta == 0.0) {
            accept = true;  // r < exp(0) = 1 for r in [0, 1)
          } else {
            const double exponent = -delta / temperature;
            accept = exponent > -746.0 && r < std::exp(exponent);
          }
          if (accept) ++stats.uphill_accepted;
        }
        if (accept) {
          current_cost = problem.commit();
          ++stats.accepted;
          if (current_cost < best_cost && problem.recordable()) {
            best_cost = current_cost;
            have_best = true;
            problem.record_best(best_cost);
            stats.seconds_to_best = detail::seconds_since(start_time);
          }
        } else {
          problem.revert();
        }
      }
    }
    temperature *= schedule.cooling_rate;
    ++stats.temperature_steps;
  }

  stats.final_temperature = temperature;
  stats.best_cost = best_cost;
  detail::finish_stats(stats, start_time);
  if (stats_out) *stats_out = stats;
  return have_best ? best_cost : std::numeric_limits<double>::infinity();
}

}  // namespace dmfb
