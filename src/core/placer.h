// placer.h — the polymorphic placement interface and its string-keyed
// registry.
//
// The paper's flow treats placement as one pluggable stage: architectural-
// level synthesis hands a Schedule to *some* placer, which returns module
// locations. The repo grew six placers (greedy bottom-left, KAMER-style
// online, simulated annealing, the portfolio of exchange-coupled annealing
// replicas, exact branch-and-bound, and the two-stage fault-aware flow),
// each with its own free function and option struct;
// this header unifies them behind one abstract `Placer` so drivers,
// benches and the `SynthesisPipeline` facade (assay/pipeline.h) can select
// a backend by name:
//
//   auto placer = make_placer("two-stage");
//   PlacementOutcome outcome = placer->place(schedule, context);
//
// New placers register themselves with `PlacerRegistry::global()` and are
// immediately usable everywhere a placer name is accepted.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "assay/schedule.h"
#include "core/annealer.h"
#include "core/cost.h"
#include "core/moves.h"
#include "core/optimal_placer.h"
#include "core/portfolio_placer.h"
#include "core/reconfig.h"
#include "core/sa_placer.h"
#include "util/enum_text.h"
#include "util/registry.h"

namespace dmfb {

/// The built-in placement backends, in registry-name order.
enum class PlacerKind {
  kSa,        ///< simulated annealing (the paper's method, §4)
  kGreedy,    ///< greedy bottom-left baseline (§6.1)
  kKamer,     ///< KAMER-style online best-fit over maximal empty rectangles
  kOptimal,   ///< exact branch-and-bound (small instances only)
  kTwoStage,  ///< fault-aware two-stage annealing (§6.2)
  kPortfolio, ///< N exchange-coupled SA replicas raced over the thread pool
};

/// Registry name of a built-in placer kind ("sa", "greedy", "kamer",
/// "optimal", "two-stage", "portfolio").
const char* to_string(PlacerKind kind);
template <>
PlacerKind from_string<PlacerKind>(std::string_view text);
std::ostream& operator<<(std::ostream& os, PlacerKind kind);
std::istream& operator>>(std::istream& is, PlacerKind& kind);

/// Everything a placement backend may need, superseding the six per-placer
/// option structs. Backends read the fields relevant to them and ignore the
/// rest; `seed` drives every stochastic backend so one number reproduces a
/// run (see PipelineOptions::seed).
struct PlacerContext {
  int canvas_width = 24;   ///< core-area bound (Fig. 4(a))
  int canvas_height = 24;
  /// Electrodes known defective before placement; defect-aware backends
  /// place around them, others refuse (throw) rather than silently ignore.
  std::vector<Point> defects;
  /// Droplet-transfer demand edges priced by weights.gamma — the
  /// routing-aware placement term (core/cost.h RouteLink). The pipeline
  /// fills these from routing::extract_links and, on feedback rounds,
  /// re-weights them with measured route costs. Ignored at gamma = 0.
  std::vector<RouteLink> route_links;
  /// Optional warm-start placement (module poses copied onto the new
  /// schedule when compatible; see SaPlacerOptions::initial). Honoured by
  /// the annealing backends ("sa" and stage 1 of "two-stage"); the others
  /// ignore it.
  std::shared_ptr<const Placement> initial_placement;
  std::uint64_t seed = 0xDA7E2005ULL;

  // Annealing backends ("sa", stage 1 of "two-stage").
  AnnealingSchedule annealing;  ///< paper defaults: T0=1e4, alpha=0.9, Na=400
  MoveOptions moves;
  CostWeights weights;  ///< beta = 0 keeps the objective area-only
  FtiOptions fti_options;
  /// Proposal-evaluation engine (both annealing stages); kDelta and kCopy
  /// give identical results (kDelta the fast path), kFused trades the
  /// legacy random stream for the fastest proposal loop, kBatched adds
  /// speculative batched pricing on top of kFused.
  AnnealingEngine engine = AnnealingEngine::kDelta;
  /// kBatched only: moves drawn and priced ahead per batch (see
  /// SaPlacerOptions::speculation_lookahead).
  int speculation_lookahead = 8;

  // "portfolio": replica count / exchange period / temperature ladder /
  // worker threads / early-stop target (core/portfolio_placer.h). The
  // replicas anneal with the fields above ("sa" options); kCopy is
  // rejected as the replica engine, kDelta runs the fused proposal path.
  PortfolioOptions portfolio;

  // "two-stage" refinement (§6.2).
  double two_stage_beta = 30.0;  ///< fault-tolerance weight of stage 2
  AnnealingSchedule ltsa{/*initial_temperature=*/100.0,
                         /*cooling_rate=*/0.9,
                         /*iterations_per_module=*/400,
                         /*min_temperature=*/0.05};

  // "optimal" exact search limits (carries its own allow_rotation).
  OptimalPlacerOptions optimal;

  // "kamer" online placement. `allow_rotation` governs this backend only;
  // `optimal` and `fti_options` carry their own rotation flags.
  RelocationPolicy kamer_policy = RelocationPolicy::kBestFit;
  bool allow_rotation = true;
};

/// SaPlacerOptions equivalent to `context` (used by the "sa" adapter and by
/// callers migrating off the legacy struct).
SaPlacerOptions sa_options_from(const PlacerContext& context);

/// Abstract placement backend: a Schedule in, module locations out.
///
/// Implementations are stateless w.r.t. `place` (const, reentrant), so one
/// instance may serve concurrent pipeline runs. `place` throws
/// std::runtime_error when no feasible placement is found and
/// std::invalid_argument when the context asks for something the backend
/// cannot honour (e.g. a defect map for a defect-oblivious backend).
class Placer {
 public:
  virtual ~Placer() = default;

  /// Registry key of this backend (e.g. "sa").
  virtual std::string name() const = 0;

  /// Places `schedule`'s modules. The returned outcome is always feasible
  /// (overlap-free, within canvas).
  virtual PlacementOutcome place(const Schedule& schedule,
                                 const PlacerContext& context) const = 0;
};

/// String-keyed placer factory. The six built-ins are pre-registered;
/// `register_placer` adds custom backends process-wide. All methods are
/// thread-safe (run_many workers resolve placers concurrently). The
/// locking machinery is the shared detail::NamedRegistry (util/registry.h).
class PlacerRegistry {
 public:
  using Factory = detail::NamedRegistry<Placer>::Factory;

  /// The process-wide registry, with built-ins pre-registered.
  static PlacerRegistry& global();

  /// Registers a backend under `name`. Throws std::invalid_argument when
  /// the name is empty or already taken.
  void register_placer(const std::string& name, Factory factory) {
    registry_.add(name, std::move(factory));
  }

  /// Instantiates the backend registered under `name`. Throws
  /// std::invalid_argument for unknown names; the message lists every
  /// registered name.
  std::unique_ptr<Placer> make(const std::string& name) const {
    return registry_.make(name);
  }

  bool contains(const std::string& name) const {
    return registry_.contains(name);
  }

  /// All registered names, sorted.
  std::vector<std::string> names() const { return registry_.names(); }

 private:
  PlacerRegistry();

  detail::NamedRegistry<Placer> registry_{"placer"};
};

/// Convenience forwarders to PlacerRegistry::global().
std::unique_ptr<Placer> make_placer(const std::string& name);
std::unique_ptr<Placer> make_placer(PlacerKind kind);
std::vector<std::string> registered_placers();

}  // namespace dmfb
