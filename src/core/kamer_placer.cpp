#include "core/kamer_placer.h"

#include <algorithm>
#include <numeric>

#include "core/mer.h"

namespace dmfb {
namespace {

/// Occupancy of `array` by already-placed modules that time-overlap
/// module `index`.
Matrix<std::uint8_t> occupancy_for(const Placement& placement, int index,
                                   const std::vector<bool>& placed,
                                   int array_width, int array_height) {
  Matrix<std::uint8_t> grid(array_width, array_height, 0);
  const PlacedModule& target = placement.module(index);
  for (int i = 0; i < placement.module_count(); ++i) {
    if (i == index || !placed[i]) continue;
    const PlacedModule& other = placement.module(i);
    if (!target.time_overlaps(other)) continue;
    grid.fill_rect(other.footprint(), 1);
  }
  return grid;
}

}  // namespace

KamerResult place_kamer(const Schedule& schedule, int array_width,
                        int array_height, RelocationPolicy policy,
                        bool allow_rotation) {
  KamerResult result;
  // Reject arrays some module cannot fit in either orientation, before
  // the Placement constructor gets a chance to throw.
  for (const auto& m : schedule.modules()) {
    const int w = m.spec.footprint_width();
    const int h = m.spec.footprint_height();
    const bool fits = (w <= array_width && h <= array_height) ||
                      (allow_rotation && h <= array_width &&
                       w <= array_height);
    if (!fits) {
      result.success = false;
      result.failure_reason = "module '" + m.label + "' (" +
                              std::to_string(w) + "x" + std::to_string(h) +
                              ") cannot fit a " +
                              std::to_string(array_width) + "x" +
                              std::to_string(array_height) + " array";
      return result;
    }
  }
  result.placement = Placement(schedule, array_width, array_height);
  Placement& placement = result.placement;

  // Arrival order: start time, then larger modules first (they are the
  // hardest to fit), then index for determinism.
  std::vector<int> order(static_cast<std::size_t>(placement.module_count()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto& ma = placement.module(a);
    const auto& mb = placement.module(b);
    if (ma.start_s != mb.start_s) return ma.start_s < mb.start_s;
    if (ma.spec.footprint_cells() != mb.spec.footprint_cells()) {
      return ma.spec.footprint_cells() > mb.spec.footprint_cells();
    }
    return a < b;
  });

  std::vector<bool> placed(static_cast<std::size_t>(placement.module_count()),
                           false);
  for (const int index : order) {
    const auto& m = placement.module(index);
    const Matrix<std::uint8_t> occupied =
        occupancy_for(placement, index, placed, array_width, array_height);
    const std::vector<Rect> mers = maximal_empty_rectangles(occupied);

    const int w = m.spec.footprint_width();
    const int h = m.spec.footprint_height();

    struct Candidate {
      Rect mer;
      bool rotated;
    };
    std::optional<Candidate> best;
    auto consider = [&](const Rect& mer, bool rotated) {
      const int cw = rotated ? h : w;
      const int ch = rotated ? w : h;
      if (mer.width < cw || mer.height < ch) return;
      if (!best) {
        best = Candidate{mer, rotated};
        return;
      }
      switch (policy) {
        case RelocationPolicy::kFirstFit:
          break;  // keep the first in scan order
        case RelocationPolicy::kBestFit:
          if (mer.area() < best->mer.area()) best = Candidate{mer, rotated};
          break;
        case RelocationPolicy::kNearest:
          // Online placement has no "previous location"; nearest to the
          // origin keeps the array compact.
          if (manhattan_distance({mer.x, mer.y}, {0, 0}) <
              manhattan_distance({best->mer.x, best->mer.y}, {0, 0})) {
            best = Candidate{mer, rotated};
          }
          break;
      }
    };
    for (const Rect& mer : mers) {
      consider(mer, false);
      if (allow_rotation && w != h) consider(mer, true);
    }

    if (!best) {
      result.success = false;
      result.failure_reason =
          "module '" + m.label + "' (start " + std::to_string(m.start_s) +
          "s) does not fit any maximal empty rectangle of a " +
          std::to_string(array_width) + "x" + std::to_string(array_height) +
          " array";
      return result;
    }
    placement.set_rotated(index, best->rotated);
    placement.set_anchor(index, Point{best->mer.x, best->mer.y});
    placed[index] = true;
    ++result.modules_placed;
  }

  result.success = true;
  return result;
}

std::optional<KamerResult> smallest_kamer_array(const Schedule& schedule,
                                                int max_side,
                                                RelocationPolicy policy) {
  // A square side must hold each module's larger footprint dimension
  // (rotation only swaps width and height).
  int min_side = 1;
  for (const auto& m : schedule.modules()) {
    min_side = std::max(
        min_side, std::max(m.spec.footprint_width(),
                           m.spec.footprint_height()));
  }
  for (int side = min_side; side <= max_side; ++side) {
    KamerResult result = place_kamer(schedule, side, side, policy);
    if (result.success) return result;
  }
  return std::nullopt;
}

}  // namespace dmfb
