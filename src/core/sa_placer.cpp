#include "core/sa_placer.h"

#include <chrono>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "core/greedy_placer.h"
#include "core/incremental_cost.h"

namespace dmfb {

const char* to_string(AnnealingEngine engine) {
  switch (engine) {
    case AnnealingEngine::kDelta:
      return "delta";
    case AnnealingEngine::kCopy:
      return "copy";
  }
  return "?";
}

template <>
AnnealingEngine from_string<AnnealingEngine>(std::string_view text) {
  if (text == "delta") return AnnealingEngine::kDelta;
  if (text == "copy") return AnnealingEngine::kCopy;
  throw std::invalid_argument("unknown AnnealingEngine \"" +
                              std::string(text) +
                              "\" (expected one of: delta, copy)");
}

std::ostream& operator<<(std::ostream& os, AnnealingEngine engine) {
  return os << to_string(engine);
}

std::istream& operator>>(std::istream& is, AnnealingEngine& engine) {
  std::string token;
  is >> token;
  engine = from_string<AnnealingEngine>(token);
  return is;
}

PlacementOutcome place_simulated_annealing(const Schedule& schedule,
                                           const SaPlacerOptions& options) {
  const Placement initial =
      place_greedy(schedule, options.canvas_width, options.canvas_height,
                   options.defects);
  return anneal_from(initial, options);
}

namespace {

/// The original engine: every proposal copies the placement and evaluates
/// cost from scratch. Kept as the delta engine's cross-check oracle.
Placement anneal_copy(const Placement& initial, const CostEvaluator& evaluator,
                      const SaPlacerOptions& options, Rng& rng,
                      AnnealingStats* stats) {
  AnnealingProblem<Placement> problem;
  problem.cost = [&](const Placement& p) { return evaluator.cost(p); };
  problem.neighbor = [&](const Placement& p, double fraction, Rng& move_rng) {
    Placement next = p;
    apply_random_move(next, fraction, options.moves, move_rng);
    return next;
  };
  problem.recordable = [&](const Placement& p) {
    return p.feasible() && evaluator.defect_usage(p) == 0;
  };
  return anneal(initial, problem, options.schedule, initial.module_count(),
                rng, stats);
}

/// Concrete (non-type-erased) delta problem, so the annealing loop inlines
/// the callbacks — std::function dispatch measurably costs at the delta
/// engine's proposal rates.
template <typename P, typename C, typename R, typename Q, typename B>
struct InlineDeltaProblem {
  P propose_delta;
  C commit;
  R revert;
  Q recordable;
  B record_best;
};
template <typename P, typename C, typename R, typename Q, typename B>
InlineDeltaProblem(P, C, R, Q, B) -> InlineDeltaProblem<P, C, R, Q, B>;

/// The incremental engine: one IncrementalPlacementState mutated in place,
/// each proposal priced by the delta of the cost terms it touched. The
/// placement is only ever copied when a new best is recorded.
Placement anneal_delta_engine(const Placement& initial,
                              const CostEvaluator& evaluator,
                              const SaPlacerOptions& options, Rng& rng,
                              AnnealingStats* stats) {
  IncrementalPlacementState state(initial, evaluator);

  // Best-so-far as a pose list, not a Placement copy: the early
  // accept-everything phase improves the best thousands of times, and a
  // full Placement copy per improvement (strings, pair and slice
  // vectors) costs more than the proposal it follows.
  struct Pose {
    Point anchor;
    bool rotated = false;
  };
  std::vector<Pose> best_pose(
      static_cast<std::size_t>(initial.module_count()));

  const InlineDeltaProblem problem{
      /*propose_delta=*/[&](double fraction, Rng& move_rng) {
        return state.propose(generate_random_move(state.placement(), fraction,
                                                  options.moves, move_rng));
      },
      /*commit=*/[&] { return state.commit(); },
      /*revert=*/[&] { state.revert(); },
      /*recordable=*/
      [&] { return state.feasible() && state.defect_cells() == 0; },
      /*record_best=*/
      [&](double) {
        const auto& modules = state.placement().modules();
        for (std::size_t i = 0; i < best_pose.size(); ++i) {
          best_pose[i] = Pose{modules[i].anchor, modules[i].rotated};
        }
      }};

  const double best_cost =
      anneal_delta(state.cost(), problem, options.schedule,
                   initial.module_count(), rng, stats);
  // No recordable state seen: fall back to the final current state, as the
  // copying engine does.
  if (!std::isfinite(best_cost)) return state.placement();
  Placement best = state.placement();
  for (std::size_t i = 0; i < best_pose.size(); ++i) {
    best.set_position(static_cast<int>(i), best_pose[i].anchor,
                      best_pose[i].rotated);
  }
  return best;
}

}  // namespace

PlacementOutcome anneal_from(const Placement& initial,
                             const SaPlacerOptions& options) {
  const auto start_time = std::chrono::steady_clock::now();

  CostEvaluator evaluator(options.weights, options.fti_options);
  evaluator.set_defects(options.defects);
  evaluator.set_route_links(options.route_links);
  Rng rng(options.seed);

  PlacementOutcome outcome;
  outcome.placement =
      options.engine == AnnealingEngine::kCopy
          ? anneal_copy(initial, evaluator, options, rng, &outcome.stats)
          : anneal_delta_engine(initial, evaluator, options, rng,
                                &outcome.stats);
  outcome.cost = evaluator.evaluate(outcome.placement);
  outcome.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  return outcome;
}

}  // namespace dmfb
