#include "core/sa_placer.h"

#include <chrono>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "core/greedy_placer.h"
#include "core/incremental_cost.h"

namespace dmfb {

const char* to_string(AnnealingEngine engine) {
  switch (engine) {
    case AnnealingEngine::kDelta:
      return "delta";
    case AnnealingEngine::kCopy:
      return "copy";
    case AnnealingEngine::kFused:
      return "fused";
    case AnnealingEngine::kBatched:
      return "batched";
  }
  return "?";
}

template <>
AnnealingEngine from_string<AnnealingEngine>(std::string_view text) {
  if (text == "delta") return AnnealingEngine::kDelta;
  if (text == "copy") return AnnealingEngine::kCopy;
  if (text == "fused") return AnnealingEngine::kFused;
  if (text == "batched") return AnnealingEngine::kBatched;
  throw std::invalid_argument(
      "unknown AnnealingEngine \"" + std::string(text) +
      "\" (expected one of: delta, copy, fused, batched)");
}

std::ostream& operator<<(std::ostream& os, AnnealingEngine engine) {
  return os << to_string(engine);
}

std::istream& operator>>(std::istream& is, AnnealingEngine& engine) {
  std::string token;
  is >> token;
  engine = from_string<AnnealingEngine>(token);
  return is;
}

namespace detail {

bool seed_from_warm_start(Placement& seeded, const Placement& warm,
                          const SaPlacerOptions& options) {
  if (warm.module_count() != seeded.module_count()) return false;
  for (int i = 0; i < seeded.module_count(); ++i) {
    seeded.set_position(i, warm.module(i).anchor, warm.module(i).rotated);
  }
  if (!seeded.feasible()) return false;
  if (!options.defects.empty()) {
    CostEvaluator evaluator(options.weights, options.fti_options);
    evaluator.set_defects(options.defects);
    if (evaluator.defect_usage(seeded) != 0) return false;
  }
  return true;
}

}  // namespace detail

PlacementOutcome place_simulated_annealing(const Schedule& schedule,
                                           const SaPlacerOptions& options) {
  if (options.initial) {
    Placement seeded(schedule, options.canvas_width, options.canvas_height);
    if (detail::seed_from_warm_start(seeded, *options.initial, options)) {
      return anneal_from(seeded, options);
    }
  }
  const Placement initial =
      place_greedy(schedule, options.canvas_width, options.canvas_height,
                   options.defects);
  return anneal_from(initial, options);
}

namespace {

/// The original engine: every proposal copies the placement and evaluates
/// cost from scratch. Kept as the delta engine's cross-check oracle.
Placement anneal_copy(const Placement& initial, const CostEvaluator& evaluator,
                      const SaPlacerOptions& options, Rng& rng,
                      AnnealingStats* stats) {
  long long proposals_by_kind[AnnealingStats::kMoveKindSlots] = {0, 0, 0, 0};
  AnnealingProblem<Placement> problem;
  problem.cost = [&](const Placement& p) { return evaluator.cost(p); };
  problem.neighbor = [&](const Placement& p, double fraction, Rng& move_rng) {
    Placement next = p;
    const MoveKind kind =
        apply_random_move(next, fraction, options.moves, move_rng);
    ++proposals_by_kind[static_cast<int>(kind)];
    return next;
  };
  problem.recordable = [&](const Placement& p) {
    return p.feasible() && evaluator.defect_usage(p) == 0;
  };
  Placement best = anneal(initial, problem, options.schedule,
                          initial.module_count(), rng, stats);
  if (stats) {
    for (int k = 0; k < AnnealingStats::kMoveKindSlots; ++k) {
      stats->proposals_by_kind[k] = proposals_by_kind[k];
    }
  }
  return best;
}

/// Concrete (non-type-erased) delta problem, so the annealing loop inlines
/// the callbacks — std::function dispatch measurably costs at the delta
/// engine's proposal rates.
template <typename P, typename C, typename R, typename Q, typename B>
struct InlineDeltaProblem {
  P propose_delta;
  C commit;
  R revert;
  Q recordable;
  B record_best;
};
template <typename P, typename C, typename R, typename Q, typename B>
InlineDeltaProblem(P, C, R, Q, B) -> InlineDeltaProblem<P, C, R, Q, B>;

/// anneal_batched's problem shape: speculate/activate in place of
/// propose_delta, same resolution members.
template <typename S, typename A, typename C, typename R, typename Q,
          typename B>
struct InlineBatchedProblem {
  S speculate;
  A activate;
  C commit;
  R revert;
  Q recordable;
  B record_best;
};
template <typename S, typename A, typename C, typename R, typename Q,
          typename B>
InlineBatchedProblem(S, A, C, R, Q, B)
    -> InlineBatchedProblem<S, A, C, R, Q, B>;

/// Shared scaffolding of the delta and fused engines: one
/// IncrementalPlacementState mutated in place, each proposal priced by
/// the delta of the cost terms it touched; the placement is only ever
/// copied when a new best is recorded. `generate` turns (state, cached
/// window span, rng) into one priced proposal and reports its kind;
/// `loop` is anneal_delta or anneal_fused.
template <typename Generate, typename Loop>
Placement anneal_incremental_engine(const Placement& initial,
                                    const CostEvaluator& evaluator,
                                    const SaPlacerOptions& options, Rng& rng,
                                    AnnealingStats* stats,
                                    Generate&& generate, Loop&& loop) {
  IncrementalPlacementState state(initial, evaluator);

  // Best-so-far as a pose list, not a Placement copy: the early
  // accept-everything phase improves the best thousands of times, and a
  // full Placement copy per improvement (strings, pair and slice
  // vectors) costs more than the proposal it follows.
  struct Pose {
    Point anchor;
    bool rotated = false;
  };
  std::vector<Pose> best_pose(
      static_cast<std::size_t>(initial.module_count()));

  // Controlling-window span cached per temperature step (it depends only
  // on the canvas and the fraction, which is constant within a step) —
  // stream-identical to re-deriving it per proposal. Kind tallies feed
  // AnnealingStats' telemetry; commit() fires once per accepted move.
  long long proposals_by_kind[AnnealingStats::kMoveKindSlots] = {0, 0, 0, 0};
  long long accepted_by_kind[AnnealingStats::kMoveKindSlots] = {0, 0, 0, 0};
  double cached_fraction = -1.0;
  int cached_span = 0;
  int last_kind = 0;

  const InlineDeltaProblem problem{
      /*propose_delta=*/[&](double fraction, Rng& move_rng) {
        if (fraction != cached_fraction) {
          cached_fraction = fraction;
          cached_span = controlling_window_span(state.placement(), fraction,
                                                options.moves);
        }
        MoveKind kind = MoveKind::kDisplace;
        const double delta = generate(state, cached_span, move_rng, kind);
        last_kind = static_cast<int>(kind);
        ++proposals_by_kind[last_kind];
        return delta;
      },
      /*commit=*/
      [&] {
        ++accepted_by_kind[last_kind];
        return state.commit();
      },
      /*revert=*/[&] { state.revert(); },
      /*recordable=*/
      [&] { return state.feasible() && state.defect_cells() == 0; },
      /*record_best=*/
      [&](double) {
        const auto& modules = state.placement().modules();
        for (std::size_t i = 0; i < best_pose.size(); ++i) {
          best_pose[i] = Pose{modules[i].anchor, modules[i].rotated};
        }
      }};

  const double best_cost = loop(state.cost(), problem, options.schedule,
                                initial.module_count(), rng, stats);
  if (stats) {
    for (int k = 0; k < AnnealingStats::kMoveKindSlots; ++k) {
      stats->proposals_by_kind[k] = proposals_by_kind[k];
      stats->accepted_by_kind[k] = accepted_by_kind[k];
    }
  }
  // No recordable state seen: fall back to the final current state, as the
  // copying engine does.
  if (!std::isfinite(best_cost)) return state.placement();
  Placement best = state.placement();
  for (std::size_t i = 0; i < best_pose.size(); ++i) {
    best.set_position(static_cast<int>(i), best_pose[i].anchor,
                      best_pose[i].rotated);
  }
  return best;
}

/// The delta engine: legacy-stream generation (the copy engine's exact
/// trajectory) through the shared incremental scaffolding.
Placement anneal_delta_engine(const Placement& initial,
                              const CostEvaluator& evaluator,
                              const SaPlacerOptions& options, Rng& rng,
                              AnnealingStats* stats) {
  return anneal_incremental_engine(
      initial, evaluator, options, rng, stats,
      [&options](IncrementalPlacementState& state, int span, Rng& move_rng,
                 MoveKind& kind) {
        const PlacementMove move = generate_random_move_with_span(
            state.placement(), span, options.moves, move_rng);
        kind = move.kind;
        return state.propose(move);
      },
      [](double cost, const auto& problem, const AnnealingSchedule& schedule,
         int module_count, Rng& loop_rng, AnnealingStats* loop_stats) {
        return anneal_delta(cost, problem, schedule, module_count, loop_rng,
                            loop_stats);
      });
}

/// The fused engine: move generation fused into the proposal
/// (propose_random) driven by anneal_fused's batched-draw loop. Fastest
/// path; deterministic per seed, but intentionally not the legacy
/// kDelta/kCopy stream.
Placement anneal_fused_engine(const Placement& initial,
                              const CostEvaluator& evaluator,
                              const SaPlacerOptions& options, Rng& rng,
                              AnnealingStats* stats) {
  return anneal_incremental_engine(
      initial, evaluator, options, rng, stats,
      [&options](IncrementalPlacementState& state, int span, Rng& move_rng,
                 MoveKind& kind) {
        const double delta = state.propose_random(span, options.moves,
                                                  move_rng);
        kind = state.last_move_kind();
        return delta;
      },
      [](double cost, const auto& problem, const AnnealingSchedule& schedule,
         int module_count, Rng& loop_rng, AnnealingStats* loop_stats) {
        return anneal_fused(cost, problem, schedule, module_count, loop_rng,
                            loop_stats);
      });
}

/// The batched engine: speculative lookahead pricing
/// (IncrementalPlacementState::speculate_batch/activate) driven by
/// anneal_batched. Mirrors anneal_incremental_engine's scaffolding — the
/// problem shape differs (speculate/activate instead of one propose), so
/// it does not share the Generate hook.
Placement anneal_batched_engine(const Placement& initial,
                                const CostEvaluator& evaluator,
                                const SaPlacerOptions& options, Rng& rng,
                                AnnealingStats* stats) {
  IncrementalPlacementState state(initial, evaluator);

  struct Pose {
    Point anchor;
    bool rotated = false;
  };
  std::vector<Pose> best_pose(
      static_cast<std::size_t>(initial.module_count()));

  long long proposals_by_kind[AnnealingStats::kMoveKindSlots] = {0, 0, 0, 0};
  long long accepted_by_kind[AnnealingStats::kMoveKindSlots] = {0, 0, 0, 0};
  double cached_fraction = -1.0;
  int cached_span = 0;
  int last_kind = 0;

  const InlineBatchedProblem problem{
      /*speculate=*/[&](double fraction, Rng& move_rng, int capacity) {
        if (fraction != cached_fraction) {
          cached_fraction = fraction;
          cached_span = controlling_window_span(state.placement(), fraction,
                                                options.moves);
        }
        return state.speculate_batch(cached_span, options.moves, move_rng,
                                     capacity);
      },
      /*activate=*/
      [&](int b) {
        const double delta = state.activate(b);
        last_kind = static_cast<int>(state.last_move_kind());
        ++proposals_by_kind[last_kind];
        return delta;
      },
      /*commit=*/
      [&] {
        ++accepted_by_kind[last_kind];
        return state.commit();
      },
      /*revert=*/[&] { state.revert(); },
      /*recordable=*/
      [&] { return state.feasible() && state.defect_cells() == 0; },
      /*record_best=*/
      [&](double) {
        const auto& modules = state.placement().modules();
        for (std::size_t i = 0; i < best_pose.size(); ++i) {
          best_pose[i] = Pose{modules[i].anchor, modules[i].rotated};
        }
      }};

  const double best_cost =
      anneal_batched(state.cost(), problem, options.schedule,
                     initial.module_count(), options.speculation_lookahead,
                     rng, stats);
  if (stats) {
    for (int k = 0; k < AnnealingStats::kMoveKindSlots; ++k) {
      stats->proposals_by_kind[k] = proposals_by_kind[k];
      stats->accepted_by_kind[k] = accepted_by_kind[k];
    }
    stats->speculated = state.speculation_priced();
    stats->speculation_hits = state.speculation_hits();
  }
  if (!std::isfinite(best_cost)) return state.placement();
  Placement best = state.placement();
  for (std::size_t i = 0; i < best_pose.size(); ++i) {
    best.set_position(static_cast<int>(i), best_pose[i].anchor,
                      best_pose[i].rotated);
  }
  return best;
}

}  // namespace

PlacementOutcome anneal_from(const Placement& initial,
                             const SaPlacerOptions& options) {
  const auto start_time = std::chrono::steady_clock::now();

  CostEvaluator evaluator(options.weights, options.fti_options);
  evaluator.set_defects(options.defects);
  evaluator.set_route_links(options.route_links);
  Rng rng(options.seed);

  PlacementOutcome outcome;
  switch (options.engine) {
    case AnnealingEngine::kCopy:
      outcome.placement =
          anneal_copy(initial, evaluator, options, rng, &outcome.stats);
      break;
    case AnnealingEngine::kFused:
      outcome.placement = anneal_fused_engine(initial, evaluator, options,
                                              rng, &outcome.stats);
      break;
    case AnnealingEngine::kBatched:
      outcome.placement = anneal_batched_engine(initial, evaluator, options,
                                                rng, &outcome.stats);
      break;
    case AnnealingEngine::kDelta:
      outcome.placement = anneal_delta_engine(initial, evaluator, options,
                                              rng, &outcome.stats);
      break;
  }
  outcome.cost = evaluator.evaluate(outcome.placement);
  outcome.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  return outcome;
}

}  // namespace dmfb
