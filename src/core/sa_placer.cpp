#include "core/sa_placer.h"

#include <chrono>

#include "core/greedy_placer.h"

namespace dmfb {

PlacementOutcome place_simulated_annealing(const Schedule& schedule,
                                           const SaPlacerOptions& options) {
  const Placement initial =
      place_greedy(schedule, options.canvas_width, options.canvas_height,
                   options.defects);
  return anneal_from(initial, options);
}

PlacementOutcome anneal_from(const Placement& initial,
                             const SaPlacerOptions& options) {
  const auto start_time = std::chrono::steady_clock::now();

  CostEvaluator evaluator(options.weights, options.fti_options);
  evaluator.set_defects(options.defects);
  Rng rng(options.seed);

  AnnealingProblem<Placement> problem;
  problem.cost = [&](const Placement& p) { return evaluator.cost(p); };
  problem.neighbor = [&](const Placement& p, double fraction, Rng& move_rng) {
    Placement next = p;
    apply_random_move(next, fraction, options.moves, move_rng);
    return next;
  };
  problem.recordable = [&](const Placement& p) {
    return p.feasible() && evaluator.defect_usage(p) == 0;
  };

  PlacementOutcome outcome;
  outcome.placement = anneal(initial, problem, options.schedule,
                             initial.module_count(), rng, &outcome.stats);
  outcome.cost = evaluator.evaluate(outcome.placement);
  outcome.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  return outcome;
}

}  // namespace dmfb
