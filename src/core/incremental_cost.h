// incremental_cost.h — O(1)-amortized delta-cost evaluation for the
// simulated-annealing placers.
//
// The copying engine evaluates every proposal by duplicating the whole
// Placement and recomputing cost from scratch: overlap walks every
// conflicting pair, defect usage is O(modules x defects), and (with
// beta > 0) the FTI evaluator rebuilds every module's occupancy prefix
// sums over the full region. Classic SA placers (TimberWolf, VPR) instead
// mutate one state in place and price a move by the terms it actually
// touched, undoing on rejection. IncrementalPlacementState is that
// engine's state: it owns the current Placement plus caches —
//
//   * per-conflicting-pair overlap areas with a running total,
//   * per-module defect-hit counts against a prefix-summed defect grid,
//   * bounding-box extents via sorted coordinate multisets,
//   * per-module FTI relocation queries (FtiIncrementalEvaluator),
//   * per-RouteLink routing-pressure costs in CSR adjacency (gamma != 0),
//
// and exposes propose(move) -> delta, commit(), revert(). Every absolute
// cost is recomputed from the maintained integer tallies with the exact
// arithmetic of CostEvaluator::evaluate, so the delta engine's accept
// decisions — and therefore its whole trajectory — are bit-identical to
// the copying engine's for the same seed (test_incremental_cost.cpp pins
// this).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/cost.h"
#include "core/fti.h"
#include "core/moves.h"
#include "core/placement.h"

namespace dmfb {

/// Sorted multiset of integer coordinates, specialized for the annealer's
/// bounded range (canvas extents): a flat count histogram with cached
/// min/max. insert/erase are allocation-free and O(1) amortized — erasing
/// an extreme scans to the next occupied bucket, bounded by the canvas
/// span — which is what keeps bounding-box maintenance off the delta
/// engine's critical path (a node-allocating std::multiset measurably
/// dominated it).
class ExtentSet {
 public:
  void insert(int value) {
    ensure(value);
    ++counts_[static_cast<std::size_t>(value - offset_)];
    ++size_;
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  void erase(int value) {
    --counts_[static_cast<std::size_t>(value - offset_)];
    --size_;
    if (size_ == 0) {
      min_ = std::numeric_limits<int>::max();
      max_ = std::numeric_limits<int>::min();
      return;
    }
    if (value == min_) {
      while (counts_[static_cast<std::size_t>(min_ - offset_)] == 0) ++min_;
    }
    if (value == max_) {
      while (counts_[static_cast<std::size_t>(max_ - offset_)] == 0) --max_;
    }
  }

  bool empty() const { return size_ == 0; }
  int min() const { return min_; }  ///< undefined when empty
  int max() const { return max_; }  ///< undefined when empty

 private:
  /// Grows the histogram to cover `value` (with slack, so growth is rare).
  void ensure(int value) {
    if (counts_.empty()) {
      offset_ = value - 8;
      counts_.assign(64, 0);
      return;
    }
    const int end = offset_ + static_cast<int>(counts_.size());
    if (value >= offset_ && value < end) return;
    const int new_offset = std::min(offset_, value - 8);
    const int new_end = std::max(end, value + 8);
    std::vector<int> grown(static_cast<std::size_t>(new_end - new_offset), 0);
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      grown[static_cast<std::size_t>(offset_ - new_offset) + i] = counts_[i];
    }
    counts_ = std::move(grown);
    offset_ = new_offset;
  }

  std::vector<int> counts_;
  int offset_ = 0;
  int min_ = std::numeric_limits<int>::max();
  int max_ = std::numeric_limits<int>::min();
  int size_ = 0;
};

/// In-place move/undo placement state for delta-cost annealing. At most
/// one proposal may be outstanding: propose() mutates the owned placement
/// and returns the cost delta; commit() keeps it, revert() restores the
/// previous state from the recorded undo data (no recomputation).
class IncrementalPlacementState {
 public:
  /// Takes ownership of `placement` and prices it with `evaluator`'s
  /// weights, FTI options and defect map.
  IncrementalPlacementState(Placement placement,
                            const CostEvaluator& evaluator);

  /// The current committed placement. Between propose() and
  /// commit()/revert() the content is unspecified (the beta = 0 fast path
  /// prices a move without mutating anything; the FTI path mutates
  /// eagerly) — resolve the proposal before reading it.
  const Placement& placement() const { return placement_; }

  /// Absolute cost of the committed placement; bit-identical to
  /// CostEvaluator::evaluate(placement()).value.
  double cost() const {
    return pending_.active && pending_.eager ? pending_.old_value : value_;
  }

  /// Cost decomposition from the maintained tallies (same fields as
  /// CostEvaluator::evaluate).
  CostBreakdown breakdown() const;

  /// Overlap-free and within the canvas — Placement::feasible() of the
  /// committed placement, without the O(pairs + modules) walk.
  bool feasible() const {
    return overlap_total_ == 0 && outside_count_ == 0;
  }

  /// Module cells on defective electrodes (CostEvaluator::defect_usage).
  long long defect_cells() const { return defect_total_; }

  /// The engaged FTI evaluator (nullptr at beta = 0, where the term is
  /// never computed). Exposed so the coverage-audit tests can pin its
  /// per-cell state against the reference evaluators.
  const FtiIncrementalEvaluator* fti_evaluator() const {
    return weights_.beta != 0.0 ? &fti_ : nullptr;
  }

  /// Prices `move` and returns (new cost - old cost). With beta = 0 this
  /// mutates nothing — the touched cost terms are re-derived against
  /// hypothetical footprints, so a rejected proposal costs no writes at
  /// all; with beta != 0 the state is mutated eagerly (the FTI cache
  /// patch needs the moved placement) and undone by revert(). A
  /// proposal must be resolved by commit() or revert() before the next
  /// propose().
  double propose(const PlacementMove& move);

  /// Draws one random move and prices it in a single fused pass — the
  /// kFused engine's proposal path. Consumes the same draws in the same
  /// order as `generate_random_move_with_span` followed by `propose`,
  /// but skips the intermediate PlacementMove hand-off and the separate
  /// no-op rescan (generation already knows whether the move lands
  /// where the module stands). The generated kind is readable via
  /// `last_move_kind()` until the next proposal.
  double propose_random(int window_span, const MoveOptions& options,
                        Rng& rng);

  /// Kind of the most recently proposed move (fused or explicit).
  MoveKind last_move_kind() const { return pending_.move.kind; }

  /// Keeps the proposed move; returns the (new) absolute cost.
  double commit();

  /// Discards the proposed move.
  void revert();

  bool has_pending() const { return pending_.active; }

  // --- speculative batching (the kBatched engine) -----------------------

  /// Draws `count` moves from `rng` (the exact per-move draw order of
  /// generate_random_move_with_span) and stages them as the current
  /// batch. On the lazy (beta == 0) path each move is also pre-priced
  /// against the committed placement, recording its dependency footprint
  /// — the touched modules plus their CSR pair/link neighbours — so
  /// activate() can tell whether an intervening acceptance invalidated
  /// the price. With beta != 0 (pricing mutates the state eagerly) the
  /// moves are drawn but not pre-priced and every activate() prices
  /// fresh. Requires no outstanding proposal. Returns `count`.
  int speculate_batch(int window_span, const MoveOptions& options, Rng& rng,
                      int count);

  /// Stages batch entry `b` as the pending proposal and returns its cost
  /// delta: served from the speculative price when every module in the
  /// entry's dependency footprint — and the bounding box, when the price
  /// read it — is untouched since the batch was drawn, else re-priced
  /// fresh (the move itself is kept either way; only the stale price is
  /// discarded). Resolve with commit()/revert() as usual.
  double activate(int b);

  /// Lifetime speculation counters behind AnnealingStats' hit-rate
  /// telemetry: prices computed ahead, and prices served still-valid.
  long long speculation_priced() const { return spec_priced_; }
  long long speculation_hits() const { return spec_hits_; }

 private:
  struct TouchedModule {
    int index = -1;
    Point anchor{0, 0};
    bool rotated = false;
    bool outside = false;
    long long defect_hits = 0;
    Rect footprint;  ///< pre-move footprint (cache restore on revert)
  };

  struct Pending {
    bool active = false;
    bool eager = false;  ///< beta != 0: state already mutated, undo below
    PlacementMove move;

    // Lazy (beta = 0) candidates, applied by commit(). `footprints_` is
    // updated by propose() itself (the overlap/bbox pricing reads it);
    // revert() puts `old_footprints` back.
    Rect old_footprints[2];
    bool new_outside[2] = {false, false};
    long long new_defect_hits[2] = {0, 0};
    std::vector<std::pair<int, long long>> new_pair_overlaps;
    std::vector<std::pair<int, long long>> new_link_costs;
    long long cand_overlap_total = 0;
    long long cand_defect_total = 0;
    long long cand_pressure_total = 0;
    int cand_outside_count = 0;
    Rect cand_bbox;
    double cand_value = 0.0;
    /// Lazy pricing fell back to the full footprint scan for the
    /// candidate bounding box (read by speculate_batch: such a price
    /// depends on every module, so any later acceptance invalidates it).
    bool scanned_bbox = false;

    // Eager (beta != 0) undo data, applied by revert().
    TouchedModule old_modules[2];
    std::vector<std::pair<int, long long>> old_pair_overlaps;
    std::vector<std::pair<int, long long>> old_link_costs;
    long long old_overlap_total = 0;
    long long old_defect_total = 0;
    long long old_pressure_total = 0;
    int old_outside_count = 0;
    long long old_covered = 0;
    Rect old_bbox;
    double old_value = 0.0;
    FtiIncrementalEvaluator::Backup fti_backup;
  };

  /// The combined objective, in the exact expression order of
  /// CostEvaluator::evaluate (bit-compatibility with the copy engine).
  double value_of(long long area_cells, long long overlap_cells,
                  long long defect_cells, double fti,
                  long long route_pressure) const;

  /// value_of over the committed tallies.
  double value_from_tallies() const;

  /// Pricing shared by propose()/propose_random(): `noop` tells it the
  /// move provably lands every touched module exactly where it stands.
  double propose_known(const PlacementMove& move, bool noop);

  double propose_eager(const PlacementMove& move);

  long long defect_hits(const Rect& footprint) const;
  Rect bounding_box_from_extents() const;
  void erase_extents(const Rect& footprint);
  void insert_extents(const Rect& footprint);

  Placement placement_;
  CostWeights weights_;
  std::vector<Point> defects_;

  /// Current footprint of every module — PlacedModule::footprint() is hot
  /// enough in the proposal loop (pair overlaps, extents, defects all need
  /// it) that re-deriving it from the spec each time measurably costs.
  std::vector<Rect> footprints_;

  /// One conflicting pair with its cached overlap, packed so the pricing
  /// loop touches one cache line per pair (indices and overlap together).
  struct PairEntry {
    int i = 0;
    int j = 0;
    long long overlap = 0;
  };

  /// Conflicting pairs touching each module, in CSR form (module m's
  /// pair indices are pair_adjacency_[pair_offsets_[m] ..
  /// pair_offsets_[m + 1])) — flat arrays, no per-module pointer chase.
  std::vector<int> pair_offsets_;
  std::vector<int> pair_adjacency_;
  std::vector<PairEntry> pair_entries_;  ///< parallel to conflicting_pairs()
  long long overlap_total_ = 0;

  /// Prefix-summed defect counts over the defects' bounding rect
  /// (multiplicity-aware: duplicate defect points count twice, matching
  /// CostEvaluator::defect_usage).
  Rect defect_bounds_;
  std::vector<long long> defect_sums_;  ///< (w+1) x (h+1), row-major
  std::vector<long long> module_defect_hits_;
  long long defect_total_ = 0;

  /// Current (committed) placement bounding box.
  Rect bbox_;

  /// Bounding-box extents, one entry per module footprint edge.
  /// Maintained only on the eager (beta != 0) path, where the extent
  /// structures make move/undo bounding-box updates O(1); the beta = 0
  /// path prices candidate boxes with a short scan over `footprints_`
  /// instead (cheaper than histogram maintenance at placement sizes, and
  /// rejected proposals then write nothing at all).
  ExtentSet lefts_, rights_, bottoms_, tops_;

  std::vector<bool> outside_;  ///< per module: footprint leaves the canvas
  int outside_count_ = 0;

  /// FTI caches; engaged only when weights_.beta != 0 (the evaluator
  /// owns the temporal adjacency its patches fan out over).
  FtiIncrementalEvaluator fti_;
  long long covered_cells_ = 0;

  /// One demand edge with its cached weighted distance, mirroring
  /// PairEntry: indices and cost on one cache line for the pricing loop.
  struct LinkEntry {
    RouteLink link;
    long long cost = 0;
  };

  /// Routing-pressure caches, CSR adjacency by incident module (a link
  /// touches its target and, when on-chip, its source). Engaged — built
  /// and priced — only when weights_.gamma != 0 and the evaluator carried
  /// links; otherwise every container stays empty and proposals skip the
  /// term entirely, exactly like FTI at beta = 0.
  std::vector<LinkEntry> link_entries_;
  std::vector<int> link_offsets_;
  std::vector<int> link_adjacency_;
  std::vector<std::uint64_t> link_stamp_;
  long long pressure_total_ = 0;

  /// Weighted distance of one link under the current `footprints_`.
  long long link_cost(const LinkEntry& entry) const;

  /// Proposal-scoped dedup stamps (pairs and links), reused so the hot
  /// path allocates nothing. 64-bit: a 32-bit stamp would wrap within
  /// minutes at the delta engine's proposal rate and silently skip pair
  /// re-pricing.
  std::vector<std::uint64_t> pair_stamp_;
  std::uint64_t stamp_ = 0;

  /// One speculatively drawn (and, on the lazy path, priced) move of the
  /// current batch. `deps` below are module indices whose cached cost
  /// terms the price read: the touched modules themselves plus, for
  /// non-noops, their pair/link CSR neighbours.
  struct BatchEntry {
    PlacementMove move;
    bool noop = false;
    bool priced = false;        ///< the delta below is servable
    bool scanned_bbox = false;  ///< the price read every footprint
    double delta = 0.0;
    int dep_begin = 0;  ///< [dep_begin, dep_end) into batch_deps_
    int dep_end = 0;
  };

  bool speculation_valid(const BatchEntry& entry) const;

  std::vector<BatchEntry> batch_;
  std::vector<int> batch_deps_;
  /// Commit epochs behind speculation_valid: commit() bumps the epoch per
  /// applied non-noop move and high-water-marks the touched modules (and
  /// the bounding box when it changed), so "untouched since the batch was
  /// drawn" is an O(|deps|) comparison. module_epoch_ stays empty — and
  /// the kDelta/kFused commit path pays nothing — until the first
  /// speculate_batch call engages it.
  std::uint64_t commit_epoch_ = 0;
  std::uint64_t bbox_epoch_ = 0;
  std::uint64_t batch_epoch_ = 0;  ///< commit_epoch_ at batch-fill time
  std::vector<std::uint64_t> module_epoch_;
  /// The pending proposal is a still-valid speculative serve: nothing was
  /// mutated or staged — commit() materializes it by re-running propose()
  /// (acceptances are rare; the extra pricing is off the hot path), and
  /// revert() just drops the flag.
  bool pending_virtual_ = false;
  long long spec_priced_ = 0;
  long long spec_hits_ = 0;

  double value_ = 0.0;
  Pending pending_;
};

}  // namespace dmfb
