// cost.h — placement cost metrics (§4e and §6.2 of the paper).
//
// Stage-1 (fault-oblivious) cost: array area plus a penalty for forbidden
// overlaps, which the annealer drives to zero. Stage-2 (fault-aware)
// weighted objective: alpha * area - beta * fault-tolerance, the paper's
// multi-objective weighting with alpha = 1 and beta the designer's
// fault-tolerance importance knob (Table 2 sweeps it).
//
// The closed-loop extension adds a routing-pressure term: the droplet
// transfers a schedule implies (RouteLink demand edges, extracted by
// routing::extract_links) are priced by the distance the placement forces
// them to cover, weighted by gamma. With gamma == 0 the term — like FTI
// with beta == 0 — is never computed, so classic area-only annealing is
// untouched.
#pragma once

#include <vector>

#include "core/fti.h"
#include "core/placement.h"

namespace dmfb {

/// Cell pitch of the paper's chips: 1.5 mm, i.e. 2.25 mm^2 per cell.
inline constexpr double kPaperCellAreaMm2 = 2.25;

/// One droplet-transfer demand edge between scheduled modules: at some
/// changeover, `weight` droplet transfers leave `source_module` (a
/// schedule/placement module index; -1 = dispensed from the chip
/// perimeter) for `target_module`. The routing-pressure cost term prices
/// each edge as weight x the distance the current placement imposes on
/// it (Manhattan distance between footprint centers; distance from the
/// target's center to the nearest canvas edge for perimeter edges).
/// Edges come from routing::extract_links (static demand) and the
/// pipeline's feedback rounds fold measured route steps into `weight`
/// (routing::reweight_links), so congested transfers pull their
/// endpoints together in the next placement round. Weights are integers
/// on purpose: pressure totals stay exact, which keeps the delta and
/// copy annealing engines bit-identical.
struct RouteLink {
  int source_module = -1;  ///< -1: droplet enters from the chip perimeter
  int target_module = -1;
  long long weight = 1;    ///< transfer demand (+ measured steps after feedback)
};

/// Weights of the combined objective. With beta == 0 the evaluator never
/// computes FTI (stage-1 behaviour); with gamma == 0 it never computes
/// routing pressure.
struct CostWeights {
  double alpha = 1.0;            ///< weight per cell of bounding-box area
  double beta = 0.0;             ///< weight of FTI (0..1), 0 disables FTI
  double lambda_overlap = 50.0;  ///< penalty per forbidden overlapping cell
  /// Penalty per module cell sitting on a known-defective electrode
  /// (manufacture-time defect maps; same order as the overlap penalty so
  /// the annealer drives defect usage to zero).
  double lambda_defect = 50.0;
  /// Weight of routing pressure (weighted link distance, see RouteLink);
  /// 0 disables the term entirely. Typical useful values are well below
  /// alpha — pressure sums over links, area over cells.
  double gamma = 0.0;
};

/// Decomposed cost of one candidate placement.
struct CostBreakdown {
  long long area_cells = 0;
  long long overlap_cells = 0;
  long long defect_cells = 0;  ///< module cells on known-defective electrodes
  double fti = 0.0;       ///< 0 when FTI is not part of the objective
  /// Weighted link distance (0 when gamma == 0 or no links are set).
  long long route_pressure = 0;
  double value = 0.0;     ///< alpha*area + penalties - beta*fti + gamma*pressure

  double area_mm2(double cell_area_mm2 = kPaperCellAreaMm2) const {
    return static_cast<double>(area_cells) * cell_area_mm2;
  }
};

/// Evaluates candidate placements for the annealer.
class CostEvaluator {
 public:
  explicit CostEvaluator(CostWeights weights, FtiOptions fti_options = {})
      : weights_(weights), fti_options_(fti_options) {}

  const CostWeights& weights() const { return weights_; }
  const FtiOptions& fti_options() const { return fti_options_; }

  /// Marks electrodes known defective at placement time (e.g. from a
  /// manufacturing test); modules covering them are penalized like
  /// overlaps, so defect-aware annealing places around them.
  void set_defects(std::vector<Point> defects) {
    defects_ = std::move(defects);
    defect_bounds_ = Rect{};
    for (const Point& d : defects_) {
      defect_bounds_ = defect_bounds_.united(Rect{d.x, d.y, 1, 1});
    }
  }
  const std::vector<Point>& defects() const { return defects_; }

  /// Sets the droplet-transfer demand edges priced by the gamma term
  /// (routing::extract_links produces them; the pipeline's feedback
  /// rounds re-weight them from measured plans). Module indices must be
  /// valid for every placement later evaluated. With gamma == 0 the
  /// links are carried but never priced.
  void set_route_links(std::vector<RouteLink> links) {
    route_links_ = std::move(links);
  }
  const std::vector<RouteLink>& route_links() const { return route_links_; }

  /// Weighted link distance of `placement` over the configured links
  /// (exact integer arithmetic — see RouteLink). 0 without links.
  long long route_pressure(const Placement& placement) const;

  /// Smallest rectangle containing every defect (empty when there are
  /// none). `defect_usage` early-outs modules that miss it entirely, so
  /// defect-free regions cost nothing per proposal.
  const Rect& defect_bounds() const { return defect_bounds_; }

  CostBreakdown evaluate(const Placement& placement) const;

  /// Scalar cost (same as evaluate().value, saving the struct when hot).
  double cost(const Placement& placement) const;

  /// Module cells of `placement` lying on listed defects (each defect
  /// counted once per module whose footprint contains it).
  long long defect_usage(const Placement& placement) const;

 private:
  CostWeights weights_;
  FtiOptions fti_options_;
  std::vector<Point> defects_;
  Rect defect_bounds_;  ///< bounding rect of defects_ (empty when none)
  std::vector<RouteLink> route_links_;
};

namespace detail {

/// Center cell of a footprint — the same convention droplet routing uses
/// for transfer endpoints (routing targets a module's center), so the
/// pressure term prices the distances the router will actually route.
inline Point footprint_center(const Rect& footprint) {
  return Point{footprint.x + footprint.width / 2,
               footprint.y + footprint.height / 2};
}

/// Distance one link covers under the given footprints: Manhattan
/// center-to-center, or center-to-nearest-canvas-edge for perimeter
/// (dispense) links. Shared by CostEvaluator and the delta engine so the
/// two price identically.
inline long long route_link_distance(const RouteLink& link,
                                     const Rect& source_footprint,
                                     const Rect& target_footprint,
                                     int canvas_width, int canvas_height) {
  const Point to = footprint_center(target_footprint);
  if (link.source_module >= 0) {
    return manhattan_distance(footprint_center(source_footprint), to);
  }
  // A dispensed droplet enters at the perimeter cell nearest its target;
  // price the best case (the router may detour, feedback prices that).
  const int dx = std::min(to.x, canvas_width - 1 - to.x);
  const int dy = std::min(to.y, canvas_height - 1 - to.y);
  return std::max(0, std::min(dx, dy));
}

}  // namespace detail

}  // namespace dmfb
