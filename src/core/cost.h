// cost.h — placement cost metrics (§4e and §6.2 of the paper).
//
// Stage-1 (fault-oblivious) cost: array area plus a penalty for forbidden
// overlaps, which the annealer drives to zero. Stage-2 (fault-aware)
// weighted objective: alpha * area - beta * fault-tolerance, the paper's
// multi-objective weighting with alpha = 1 and beta the designer's
// fault-tolerance importance knob (Table 2 sweeps it).
#pragma once

#include <vector>

#include "core/fti.h"
#include "core/placement.h"

namespace dmfb {

/// Cell pitch of the paper's chips: 1.5 mm, i.e. 2.25 mm^2 per cell.
inline constexpr double kPaperCellAreaMm2 = 2.25;

/// Weights of the combined objective. With beta == 0 the evaluator never
/// computes FTI (stage-1 behaviour).
struct CostWeights {
  double alpha = 1.0;            ///< weight per cell of bounding-box area
  double beta = 0.0;             ///< weight of FTI (0..1), 0 disables FTI
  double lambda_overlap = 50.0;  ///< penalty per forbidden overlapping cell
  /// Penalty per module cell sitting on a known-defective electrode
  /// (manufacture-time defect maps; same order as the overlap penalty so
  /// the annealer drives defect usage to zero).
  double lambda_defect = 50.0;
};

/// Decomposed cost of one candidate placement.
struct CostBreakdown {
  long long area_cells = 0;
  long long overlap_cells = 0;
  long long defect_cells = 0;  ///< module cells on known-defective electrodes
  double fti = 0.0;       ///< 0 when FTI is not part of the objective
  double value = 0.0;     ///< alpha*area + penalties - beta*fti

  double area_mm2(double cell_area_mm2 = kPaperCellAreaMm2) const {
    return static_cast<double>(area_cells) * cell_area_mm2;
  }
};

/// Evaluates candidate placements for the annealer.
class CostEvaluator {
 public:
  explicit CostEvaluator(CostWeights weights, FtiOptions fti_options = {})
      : weights_(weights), fti_options_(fti_options) {}

  const CostWeights& weights() const { return weights_; }
  const FtiOptions& fti_options() const { return fti_options_; }

  /// Marks electrodes known defective at placement time (e.g. from a
  /// manufacturing test); modules covering them are penalized like
  /// overlaps, so defect-aware annealing places around them.
  void set_defects(std::vector<Point> defects) {
    defects_ = std::move(defects);
    defect_bounds_ = Rect{};
    for (const Point& d : defects_) {
      defect_bounds_ = defect_bounds_.united(Rect{d.x, d.y, 1, 1});
    }
  }
  const std::vector<Point>& defects() const { return defects_; }

  /// Smallest rectangle containing every defect (empty when there are
  /// none). `defect_usage` early-outs modules that miss it entirely, so
  /// defect-free regions cost nothing per proposal.
  const Rect& defect_bounds() const { return defect_bounds_; }

  CostBreakdown evaluate(const Placement& placement) const;

  /// Scalar cost (same as evaluate().value, saving the struct when hot).
  double cost(const Placement& placement) const;

  /// Module cells of `placement` lying on listed defects (each defect
  /// counted once per module whose footprint contains it).
  long long defect_usage(const Placement& placement) const;

 private:
  CostWeights weights_;
  FtiOptions fti_options_;
  std::vector<Point> defects_;
  Rect defect_bounds_;  ///< bounding rect of defects_ (empty when none)
};

}  // namespace dmfb
