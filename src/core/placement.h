// placement.h — the modified-2D placement model (§4 of the paper).
//
// Placement of reconfigurable modules is a 3-D packing problem (x, y, time)
// whose time axis is fixed by architectural-level synthesis, so it reduces
// to placing rectangles whose time intervals are given: two modules may
// share cells iff their intervals do not overlap (dynamic reconfiguration).
#pragma once

#include <string>
#include <vector>

#include "assay/schedule.h"
#include "biochip/grid.h"
#include "biochip/module_spec.h"
#include "util/geometry.h"

namespace dmfb {

/// One module with a (mutable) physical location and a (fixed) interval.
struct PlacedModule {
  std::string label;
  ModuleSpec spec;
  double start_s = 0.0;  ///< fixed by synthesis (cutting plane t = S_i)
  double end_s = 0.0;
  Point anchor{0, 0};    ///< bottom-left cell of the footprint
  bool rotated = false;  ///< footprint transposed when true

  Rect footprint() const { return footprint_rect(spec, anchor, rotated); }

  bool time_overlaps(const PlacedModule& other) const {
    return start_s < other.end_s && other.start_s < end_s;
  }
};

/// A candidate solution of the placement problem: module locations on a
/// bounded canvas (the "core area" of Fig. 4(a)). The time structure —
/// which pairs may conflict, and the slice decomposition — is immutable
/// after construction, so it is precomputed once and shared by copies.
class Placement {
 public:
  Placement() = default;

  /// Builds an (un-positioned: all anchors at the origin) placement from a
  /// synthesis schedule. Canvas bounds modules' reachable locations.
  Placement(const Schedule& schedule, int canvas_width, int canvas_height);

  /// Builds a placement directly from fully-described modules (labels,
  /// specs, intervals, poses), recomputing the derived time structure —
  /// the deserialization path of the persisted compile cache
  /// (CompileCache::load), which has no Schedule to rebuild from.
  Placement(std::vector<PlacedModule> modules, int canvas_width,
            int canvas_height);

  int canvas_width() const { return canvas_width_; }
  int canvas_height() const { return canvas_height_; }

  int module_count() const { return static_cast<int>(modules_.size()); }
  const std::vector<PlacedModule>& modules() const { return modules_; }
  const PlacedModule& module(int index) const { return modules_.at(index); }

  /// Moves a module; the caller is responsible for re-evaluating cost.
  void set_anchor(int index, Point anchor);
  void set_rotated(int index, bool rotated);

  /// Both of the above in one unchecked call — the delta engine applies
  /// millions of accepted moves per second, where even vector::at's
  /// bounds branch shows up. `index` must be valid.
  void set_position(int index, Point anchor, bool rotated) {
    PlacedModule& m = modules_[static_cast<std::size_t>(index)];
    m.anchor = anchor;
    m.rotated = rotated;
  }

  /// Index pairs (i < j) whose time intervals overlap — the only pairs that
  /// can conflict spatially.
  const std::vector<std::pair<int, int>>& conflicting_pairs() const {
    return conflicting_pairs_;
  }

  /// For each time slice, the indices of modules active in it (ordered by
  /// slice start time).
  const std::vector<std::vector<int>>& slice_members() const {
    return slice_members_;
  }

  /// Indices of modules whose interval overlaps module `index`'s interval
  /// (excluding itself).
  std::vector<int> temporal_neighbors(int index) const;

  /// Smallest rectangle containing every footprint (empty if no modules).
  Rect bounding_box() const;
  long long bounding_box_cells() const;

  /// Total pairwise overlap, in cells, across conflicting pairs. Zero for a
  /// feasible placement.
  long long overlap_cells() const;

  /// True when every footprint lies inside the canvas.
  bool within_canvas() const;

  /// Feasible = no forbidden overlap and within the canvas.
  bool feasible() const { return overlap_cells() == 0 && within_canvas(); }

  /// Occupancy of one slice, restricted to `region`; cell values are
  /// global module index + 1 (0 = free).
  OccupancyGrid slice_occupancy(int slice, const Rect& region) const;

  /// Occupancy of `region` by every module overlapping time interval
  /// [begin_s, end_s); cell values are module index + 1 (later modules
  /// overwrite earlier on illegal overlaps).
  OccupancyGrid occupancy_during(double begin_s, double end_s,
                                 const Rect& region) const;

  /// ASCII rendering of every slice (paper Figs. 7/8 are drawn like this).
  std::string render(const Rect& region) const;
  std::string render() const;

 private:
  int canvas_width_ = 0;
  int canvas_height_ = 0;
  std::vector<PlacedModule> modules_;
  std::vector<std::pair<int, int>> conflicting_pairs_;
  std::vector<std::vector<int>> slice_members_;
  std::vector<std::pair<double, double>> slice_times_;
};

}  // namespace dmfb
