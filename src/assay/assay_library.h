// assay_library.h — ready-made bioassay benchmarks.
//
// * PCR mixing stage — the paper's case study (Fig. 5 + Table 1): eight
//   reagent dispenses feeding a binary tree of seven mixers M1..M7.
// * Multiplexed in-vitro diagnostics — the workload motivating concurrent
//   assays in the paper's introduction (Srinivasan et al., µTAS 2003):
//   every (sample, reagent) pair is mixed and optically detected.
// * Serial protein dilution — a dilution tree using dilutor modules,
//   representative of sample-preparation assays.
#pragma once

#include <string>
#include <vector>

#include "assay/binder.h"
#include "assay/scheduler.h"
#include "assay/sequencing_graph.h"
#include "biochip/module_library.h"

namespace dmfb {

/// A benchmark: a graph plus the binding and constraints its experiments
/// use.
struct AssayCase {
  std::string name;
  SequencingGraph graph;
  Binding binding;
  SchedulerOptions scheduler_options;
};

/// The sequencing graph of the PCR mixing stage (Fig. 5): 8 dispenses,
/// 7 mix operations labelled M1..M7 forming a binary tree, 1 output.
SequencingGraph pcr_mixing_graph();

/// The paper's Table 1 resource binding for M1..M7:
///   M1: 2x2-array mixer (4x4 cells, 10 s)    M2: 4-el. linear (3x6, 5 s)
///   M3: 2x3-array mixer (4x5 cells, 6 s)     M4: 4-el. linear (3x6, 5 s)
///   M5: 4-el. linear    (3x6 cells, 5 s)     M6: 2x2 array    (4x4, 10 s)
///   M7: 2x4-array mixer (4x6 cells, 3 s)
Binding pcr_table1_binding(const SequencingGraph& pcr_graph);

/// PCR case with the Table 1 binding and the evaluation's scheduling
/// constraint (at most two mixers run concurrently, which is what bounds
/// the paper's 63-cell area-only placement).
AssayCase pcr_mixing_assay();

/// Multiplexed in-vitro diagnostics: `samples` x `reagents` independent
/// mix-then-detect chains. Mixers are drawn round-robin from `library`.
AssayCase multiplexed_diagnostics_assay(int samples, int reagents,
                                        const ModuleLibrary& library);

/// Serial dilution: `levels` levels of a binary dilutor tree rooted at a
/// sample/buffer mix (2^level dilutors at each level).
AssayCase protein_dilution_assay(int levels, const ModuleLibrary& library);

}  // namespace dmfb
