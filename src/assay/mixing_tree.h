// mixing_tree.h — synthesis of dilution/mixing trees for a target
// concentration (sample preparation).
//
// Droplet mixers merge two unit droplets and (for dilutors) split the
// result, so any achievable sample concentration after d steps is k/2^d
// for integer k — the classic bit-recursive ("Remia"-style) construction:
// reading the binary expansion of the target from LSB to MSB decides, at
// each 1:1 mixing step, whether fresh sample or buffer joins the chain.
// This turns a numeric target into a sequencing graph our synthesis flow
// can schedule, place, and simulate; tests assert that the simulated
// droplet hits the target concentration exactly.
#pragma once

#include "assay/assay_library.h"
#include "biochip/module_library.h"

namespace dmfb {

/// A target concentration k / 2^depth (0 < k < 2^depth).
struct MixRatio {
  int numerator = 1;
  int depth = 1;  ///< number of 1:1 mixing steps

  double value() const {
    return static_cast<double>(numerator) / (1 << depth);
  }
};

/// True when the ratio is representable (0 < k < 2^depth, depth in
/// [1, 16]).
bool is_valid_ratio(const MixRatio& ratio);

/// Builds the minimal 1:1 mixing chain reaching exactly
/// `ratio.numerator / 2^ratio.depth` of reagent "sample" in "buffer".
/// The result has `depth` dilute operations; sinks with a detector when
/// `add_detector`. Throws std::invalid_argument on invalid ratios.
AssayCase mixing_tree_assay(const MixRatio& ratio,
                            const ModuleLibrary& library,
                            bool add_detector = false);

/// The number of 1:1 steps the chain construction uses for `ratio`
/// (= ratio.depth after trailing-zero reduction).
int mixing_steps_required(const MixRatio& ratio);

}  // namespace dmfb
