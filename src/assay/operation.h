// operation.h — the node type of a bioassay sequencing graph.
#pragma once

#include <string>

#include "biochip/module_spec.h"

namespace dmfb {

/// Identifier of an operation within one sequencing graph (dense, 0-based).
using OperationId = int;

/// What a sequencing-graph node asks the chip to do. Dispense/output
/// operations happen at reservoir ports on the array boundary; the
/// reconfigurable operations (mix/dilute/store/detect) consume array cells
/// and are what the placer places.
enum class OperationType {
  kDispense,  ///< emit a droplet from an off-chip reservoir
  kMix,       ///< merge two droplets and mix to homogeneity
  kDilute,    ///< mix then split (dilution step)
  kStore,     ///< hold a droplet between operations
  kDetect,    ///< optical detection
  kOutput,    ///< move a droplet to a waste/collection port
};

const char* to_string(OperationType type);

/// True for operation types realized as reconfigurable modules on the
/// array (and therefore subject to placement).
bool is_reconfigurable(OperationType type);

/// Module kind needed to execute an operation type; only valid for
/// reconfigurable types.
ModuleKind module_kind_for(OperationType type);

/// A sequencing-graph node.
struct Operation {
  OperationId id = -1;
  OperationType type = OperationType::kMix;
  std::string label;    ///< e.g. "M1" in the paper's PCR example
  std::string reagent;  ///< for dispense ops: which fluid is emitted
};

}  // namespace dmfb
