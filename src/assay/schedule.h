// schedule.h — the output of architectural-level synthesis: each bound
// operation gets a module type and a start time. Placement consumes this
// (module footprints + fixed time intervals) as its input.
#pragma once

#include <string>
#include <vector>

#include "assay/sequencing_graph.h"
#include "biochip/module_spec.h"

namespace dmfb {

/// One scheduled, bound module usage. `op_id` is -1 for helper modules the
/// synthesizer inserts itself (e.g., storage for droplets waiting between
/// operations).
struct ScheduledModule {
  OperationId op_id = -1;
  std::string label;       ///< e.g. "M1" or "S(M3)" for inserted storage
  ModuleSpec spec;
  double start_s = 0.0;
  double end_s = 0.0;
  /// For inserted storage modules: the operation whose output droplet is
  /// held, and the operation that will consume it. -1 otherwise.
  OperationId producer_op = -1;
  OperationId consumer_op = -1;

  double duration_s() const { return end_s - start_s; }

  /// Open-interval time overlap; back-to-back modules (end == start) may
  /// share cells, which is exactly the dynamic reuse the paper exploits.
  bool time_overlaps(const ScheduledModule& other) const {
    return start_s < other.end_s && other.start_s < end_s;
  }
};

/// A maximal interval of time during which the set of active modules is
/// constant — one "configuration" (horizontal cut of the 3-D boxes, Fig. 2).
struct TimeSlice {
  double begin_s = 0.0;
  double end_s = 0.0;
  std::vector<int> active;  ///< indices into Schedule::modules()
};

/// A complete schedule for one assay.
class Schedule {
 public:
  Schedule() = default;

  void add(ScheduledModule module);

  const std::vector<ScheduledModule>& modules() const { return modules_; }
  int module_count() const { return static_cast<int>(modules_.size()); }
  const ScheduledModule& module(int index) const { return modules_.at(index); }

  /// Completion time of the last module (0 for an empty schedule). Note
  /// that for a schedule produced by the list scheduler this treats
  /// configuration changeovers as instantaneous; the transport-inclusive
  /// makespan is the makespan of `fold_transport(schedule, plan)`
  /// (sim/route_planner.h), which retimes the schedule by the routed
  /// droplet-transport times.
  double makespan_s() const;

  /// Retiming primitive: delays every module whose start is at or after
  /// `from_s` by `delta_s` (start and end shift together, so durations are
  /// preserved). Modules already running at `from_s` are left alone. With
  /// `delta_s >= 0`, gaps between modules never shrink, so precedence and
  /// time-disjointness are preserved — a placement feasible for the
  /// original schedule stays feasible for the shifted one. Throws
  /// std::invalid_argument on a negative delta (compressing a schedule
  /// can create overlaps the placement never priced).
  void shift_from(double from_s, double delta_s);

  /// Retiming primitive for online recovery: rewrites one module's
  /// interval in place (duration may change; end must stay >= start).
  /// Unlike shift_from this can create overlaps the placement never
  /// priced — callers own feasibility. The recovery engine uses it to
  /// re-run an interrupted operation from the detection instant
  /// (sim/recovery.h), after shift_from has pushed the successors out.
  void retime(int index, double start_s, double end_s);

  /// Splits [0, makespan) at every module start/end into maximal constant
  /// configurations, skipping zero-length intervals.
  std::vector<TimeSlice> time_slices() const;

  /// Indices of modules active at time t (start <= t < end).
  std::vector<int> active_at(double t) const;

  /// Largest total footprint (in cells) over all time slices — a lower
  /// bound on any feasible array area.
  long long peak_concurrent_cells() const;

  /// Checks precedence against `graph`: for every edge u -> v between
  /// reconfigurable operations present in the schedule,
  /// start(v) >= end(u). Returns a human-readable violation list.
  std::vector<std::string> validate_against(const SequencingGraph& graph) const;

 private:
  std::vector<ScheduledModule> modules_;
};

}  // namespace dmfb
