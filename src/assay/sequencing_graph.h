// sequencing_graph.h — the behavioural model of a bioassay.
//
// A sequencing graph (as in Fig. 5 of the paper, after Zhang et al.) is a
// DAG whose nodes are assay operations and whose edges are droplet-flow
// dependencies: an edge u -> v means an output droplet of u is an input of
// v, so v cannot start before u finishes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "assay/operation.h"

namespace dmfb {

/// Directed acyclic graph of assay operations.
class SequencingGraph {
 public:
  SequencingGraph() = default;
  explicit SequencingGraph(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds an operation; returns its id. Labels default to "<type><id>".
  OperationId add_operation(OperationType type, std::string label = {},
                            std::string reagent = {});

  /// Adds a dependency edge from -> to. Throws on out-of-range ids or
  /// self-edges; duplicate edges are ignored.
  void add_dependency(OperationId from, OperationId to);

  int operation_count() const { return static_cast<int>(operations_.size()); }
  const Operation& operation(OperationId id) const;
  const std::vector<Operation>& operations() const { return operations_; }

  const std::vector<OperationId>& predecessors(OperationId id) const;
  const std::vector<OperationId>& successors(OperationId id) const;

  /// In-degree-zero operations (typically dispenses).
  std::vector<OperationId> sources() const;
  /// Out-degree-zero operations (typically outputs or final detects).
  std::vector<OperationId> sinks() const;

  /// True when the edge set is acyclic (always the case for graphs built
  /// purely with add_dependency's checks plus this validation).
  bool is_acyclic() const;

  /// Kahn topological order; throws std::logic_error if cyclic.
  std::vector<OperationId> topological_order() const;

  /// Length (in operations) of the longest path; 0 for an empty graph.
  int longest_path_length() const;

  /// Ids of operations that are realized as reconfigurable modules.
  std::vector<OperationId> reconfigurable_operations() const;

 private:
  void check_id(OperationId id) const;

  std::string name_;
  std::vector<Operation> operations_;
  std::vector<std::vector<OperationId>> preds_;
  std::vector<std::vector<OperationId>> succs_;
};

}  // namespace dmfb
