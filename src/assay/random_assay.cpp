#include "assay/random_assay.h"

#include <algorithm>
#include <stdexcept>

namespace dmfb {

AssayCase random_assay(const RandomAssayParams& params,
                       const ModuleLibrary& library, Rng& rng) {
  if (params.mix_operations <= 0 || params.max_layer_width <= 0) {
    throw std::invalid_argument("random_assay: sizes must be positive");
  }
  const auto mixers = library.by_kind(ModuleKind::kMixer);
  if (mixers.empty()) {
    throw std::runtime_error("random_assay: no mixers in library");
  }
  const auto detectors = library.by_kind(ModuleKind::kDetector);

  AssayCase assay;
  assay.name = "random-assay";
  SequencingGraph graph(assay.name);

  // Build mixes in layers; every mix consumes either fresh dispenses or
  // outputs of earlier layers.
  std::vector<OperationId> previous_layer;
  int mixes_left = params.mix_operations;
  int mix_counter = 0;
  int dispense_counter = 0;
  std::vector<OperationId> unconsumed;  // droplets not yet used downstream

  auto new_dispense = [&]() {
    ++dispense_counter;
    return graph.add_operation(OperationType::kDispense,
                               "D" + std::to_string(dispense_counter),
                               "reagent-" + std::to_string(dispense_counter));
  };

  while (mixes_left > 0) {
    const int layer_width = std::min(
        mixes_left, 1 + static_cast<int>(rng.next_below(
                            static_cast<std::uint64_t>(params.max_layer_width))));
    std::vector<OperationId> layer;
    for (int i = 0; i < layer_width; ++i) {
      ++mix_counter;
      const OperationId mix = graph.add_operation(
          OperationType::kMix, "M" + std::to_string(mix_counter));
      // Two inputs: prefer unconsumed upstream droplets, else dispense.
      for (int input = 0; input < 2; ++input) {
        if (!unconsumed.empty() && rng.next_bool(0.6)) {
          const std::size_t pick = rng.next_below(unconsumed.size());
          graph.add_dependency(unconsumed[pick], mix);
          unconsumed.erase(unconsumed.begin() +
                           static_cast<std::ptrdiff_t>(pick));
        } else {
          graph.add_dependency(new_dispense(), mix);
        }
      }
      assay.binding.emplace(mix, mixers[rng.next_below(mixers.size())]);
      layer.push_back(mix);
    }
    for (OperationId id : layer) unconsumed.push_back(id);
    previous_layer = std::move(layer);
    mixes_left -= layer_width;
  }

  // Terminate every remaining droplet with (optionally) a detect, then an
  // output.
  int sink_counter = 0;
  for (OperationId id : unconsumed) {
    ++sink_counter;
    OperationId tail = id;
    if (!detectors.empty() && rng.next_bool(params.detect_fraction)) {
      const OperationId det = graph.add_operation(
          OperationType::kDetect, "Det" + std::to_string(sink_counter));
      graph.add_dependency(tail, det);
      assay.binding.emplace(det, detectors.front());
      tail = det;
    }
    const OperationId out = graph.add_operation(
        OperationType::kOutput, "Out" + std::to_string(sink_counter));
    graph.add_dependency(tail, out);
  }

  assay.graph = std::move(graph);
  assay.scheduler_options.constraints.max_concurrent_modules =
      params.max_concurrent_modules;
  return assay;
}

AssayCase random_assay(const RandomAssayParams& params,
                       const ModuleLibrary& library, std::uint64_t seed) {
  Rng rng(seed);
  return random_assay(params, library, rng);
}

AssayCase corridor_assay(const StressAssayParams& params,
                         const ModuleLibrary& library, std::uint64_t seed) {
  if (params.traffic_width <= 0 || params.waves <= 0 ||
      params.corridor_walls < 0) {
    throw std::invalid_argument(
        "corridor_assay: traffic_width and waves must be positive and "
        "corridor_walls non-negative");
  }
  const auto mixers = library.by_kind(ModuleKind::kMixer);
  if (mixers.empty()) {
    throw std::runtime_error("corridor_assay: no mixers in library");
  }
  const auto detectors = library.by_kind(ModuleKind::kDetector);
  if (params.corridor_walls > 0 && detectors.empty()) {
    throw std::runtime_error("corridor_assay: walls need a detector");
  }
  Rng rng(seed);

  AssayCase assay;
  assay.name = params.corridor_walls > 0 ? "corridor-assay"
                                         : "permutation-assay";
  SequencingGraph graph(assay.name);

  int dispense_counter = 0;
  auto new_dispense = [&]() {
    ++dispense_counter;
    return graph.add_operation(OperationType::kDispense,
                               "D" + std::to_string(dispense_counter),
                               "reagent-" + std::to_string(dispense_counter));
  };

  // Corridor walls: dispense -> detect chains. The detector's long
  // duration keeps the wall modules resident across the traffic waves'
  // changeovers, and their segregation rings carve the chip into lanes.
  std::vector<OperationId> wall_tails;
  for (int w = 0; w < params.corridor_walls; ++w) {
    const OperationId det = graph.add_operation(
        OperationType::kDetect, "Wall" + std::to_string(w + 1));
    graph.add_dependency(new_dispense(), det);
    assay.binding.emplace(det, detectors.front());
    wall_tails.push_back(det);
  }

  // Traffic waves. Wave 0 mixes consume fresh dispenses; wave w > 0
  // mixes consume wave w-1's outputs under a shifted reversal
  // permutation (droplet i feeds consumer (shift + width-1-i) % width),
  // plus one fresh dispense each — every wave's changeover carries
  // `traffic_width` on-chip crossing transfers and as many dispenses.
  std::vector<OperationId> previous_wave;
  for (int wave = 0; wave < params.waves; ++wave) {
    // One mixer spec per wave: the whole wave finishes simultaneously,
    // so its consumers start at a single changeover.
    const ModuleSpec mixer = mixers[rng.next_below(mixers.size())];
    const std::size_t shift =
        previous_wave.empty()
            ? 0
            : rng.next_below(static_cast<std::uint64_t>(params.traffic_width));
    std::vector<OperationId> wave_ops;
    for (int i = 0; i < params.traffic_width; ++i) {
      const OperationId mix = graph.add_operation(
          OperationType::kMix,
          "W" + std::to_string(wave + 1) + "M" + std::to_string(i + 1));
      if (previous_wave.empty()) {
        graph.add_dependency(new_dispense(), mix);
      } else {
        const std::size_t source =
            (shift + static_cast<std::size_t>(params.traffic_width - 1 - i)) %
            static_cast<std::size_t>(params.traffic_width);
        graph.add_dependency(previous_wave[source], mix);
      }
      graph.add_dependency(new_dispense(), mix);
      assay.binding.emplace(mix, mixer);
      wave_ops.push_back(mix);
    }
    previous_wave = std::move(wave_ops);
  }

  // Terminate everything.
  int sink_counter = 0;
  auto add_output = [&](OperationId tail) {
    ++sink_counter;
    const OperationId out = graph.add_operation(
        OperationType::kOutput, "Out" + std::to_string(sink_counter));
    graph.add_dependency(tail, out);
  };
  for (OperationId id : previous_wave) add_output(id);
  for (OperationId id : wall_tails) add_output(id);

  assay.graph = std::move(graph);
  assay.scheduler_options.constraints.max_concurrent_modules =
      params.max_concurrent_modules;
  return assay;
}

AssayCase permutation_assay(int traffic_width, int waves,
                            const ModuleLibrary& library, std::uint64_t seed) {
  StressAssayParams params;
  params.corridor_walls = 0;
  params.traffic_width = traffic_width;
  params.waves = waves;
  return corridor_assay(params, library, seed);
}

}  // namespace dmfb
