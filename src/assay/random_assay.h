// random_assay.h — synthetic bioassay generator for stress tests and
// property-based testing. Produces layered DAGs of mix operations with
// random fan-in, mimicking the structure of real protocols (dispenses at
// the top, a reduction tree of mixes, outputs at the bottom).
#pragma once

#include <cstdint>

#include "assay/assay_library.h"
#include "biochip/module_library.h"
#include "util/rng.h"

namespace dmfb {

/// Parameters of the random assay generator.
struct RandomAssayParams {
  int mix_operations = 8;    ///< number of mix nodes to generate
  int max_layer_width = 4;   ///< cap on mixes per layer
  double detect_fraction = 0.0;  ///< fraction of sinks that get a detector
  int max_concurrent_modules = 4;
};

/// Generates a random assay; deterministic for a given (params, rng-state).
/// All mix operations are bound round-robin over the library's mixers.
AssayCase random_assay(const RandomAssayParams& params,
                       const ModuleLibrary& library, Rng& rng);

/// Seed-taking convenience so one number reproduces the generated assay —
/// the same convention PipelineOptions::seed uses for whole runs.
AssayCase random_assay(const RandomAssayParams& params,
                       const ModuleLibrary& library, std::uint64_t seed);

}  // namespace dmfb
