// random_assay.h — synthetic bioassay generator for stress tests and
// property-based testing. Produces layered DAGs of mix operations with
// random fan-in, mimicking the structure of real protocols (dispenses at
// the top, a reduction tree of mixes, outputs at the bottom).
#pragma once

#include <cstdint>

#include "assay/assay_library.h"
#include "biochip/module_library.h"
#include "util/rng.h"

namespace dmfb {

/// Parameters of the random assay generator.
struct RandomAssayParams {
  int mix_operations = 8;    ///< number of mix nodes to generate
  int max_layer_width = 4;   ///< cap on mixes per layer
  double detect_fraction = 0.0;  ///< fraction of sinks that get a detector
  int max_concurrent_modules = 4;
};

/// Generates a random assay; deterministic for a given (params, rng-state).
/// All mix operations are bound round-robin over the library's mixers.
AssayCase random_assay(const RandomAssayParams& params,
                       const ModuleLibrary& library, Rng& rng);

/// Seed-taking convenience so one number reproduces the generated assay —
/// the same convention PipelineOptions::seed uses for whole runs.
AssayCase random_assay(const RandomAssayParams& params,
                       const ModuleLibrary& library, std::uint64_t seed);

/// Parameters of the routing stress generators. The layered random_assay
/// above rarely defeats decoupled (prioritized) routing: its transfers
/// are few and spread over many changeovers. These generators build the
/// two structures that do defeat it — *corridors* (long-lived modules
/// whose segregation rings wall off the chip, leaving narrow lanes) and
/// *permutation traffic* (a wave of simultaneous transfers whose
/// source->target pairing is a crossing permutation, so early routes
/// block later ones) — giving router ablations guaranteed spread under
/// tight step horizons.
struct StressAssayParams {
  /// Long-lived detector "walls": dispense -> detect chains whose modules
  /// sit on the chip for the detector's full (long) duration, spanning
  /// the traffic waves' changeovers as blockers.
  int corridor_walls = 3;
  /// Mixes per traffic wave — equal to the simultaneous crossing
  /// transfers at each wave's changeover.
  int traffic_width = 4;
  /// Traffic waves; wave w consumes wave w-1's outputs under a
  /// seed-shifted reversal permutation (droplet i feeds consumer
  /// (shift + width-1-i) % width), the worst case for decoupled
  /// planning.
  int waves = 2;
  /// Resource bound handed to the scheduler; generous by default so the
  /// walls and a whole wave really do run concurrently.
  int max_concurrent_modules = 16;
};

/// Corridor + permutation-traffic stress assay; deterministic for a given
/// (params, seed). All mixes of one wave share one mixer spec (drawn from
/// the library per wave), so the whole wave finishes — and the next one
/// starts — at a single changeover.
AssayCase corridor_assay(const StressAssayParams& params,
                         const ModuleLibrary& library, std::uint64_t seed);

/// Pure permutation traffic (corridor_assay without the walls).
AssayCase permutation_assay(int traffic_width, int waves,
                            const ModuleLibrary& library, std::uint64_t seed);

}  // namespace dmfb
