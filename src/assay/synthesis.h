// synthesis.h — architectural-level synthesis driver: sequencing graph in,
// (binding, schedule) out. This is the step the paper assumes has already
// run before placement ("placement follows architectural-level synthesis
// in the proposed synthesis flow", §4).
//
// DEPRECATED: these free functions predate the `SynthesisPipeline` facade
// (assay/pipeline.h), which runs the same synthesis plus placement and
// routing behind one options struct. They remain as thin wrappers for
// existing callers.
#pragma once

#include <string>
#include <vector>

#include "util/deprecation.h"

#include "assay/binder.h"
#include "assay/schedule.h"
#include "assay/scheduler.h"
#include "assay/sequencing_graph.h"
#include "biochip/module_library.h"

namespace dmfb {

/// Result of architectural-level synthesis.
struct SynthesisResult {
  Binding binding;
  Schedule schedule;
  double makespan_s = 0.0;
  long long peak_concurrent_cells = 0;
};

/// Options for the full synthesis step.
struct SynthesisOptions {
  BindingPolicy binding_policy = BindingPolicy::kRoundRobin;
  SchedulerOptions scheduler;
};

/// Binds and schedules `graph` against `library`. Throws on invalid input
/// (no module of a required kind, unsatisfiable constraints).
DMFB_DEPRECATED("use SynthesisPipeline::run(graph, library)")
SynthesisResult synthesize(const SequencingGraph& graph,
                           const ModuleLibrary& library,
                           const SynthesisOptions& options = {});

/// Variant that uses a caller-provided binding (e.g., the paper's Table 1).
DMFB_DEPRECATED("use SynthesisPipeline::run(graph, binding)")
SynthesisResult synthesize_with_binding(const SequencingGraph& graph,
                                        const Binding& binding,
                                        const SchedulerOptions& options = {});

/// Renders a schedule as an ASCII Gantt chart (one row per module, '#'
/// during the module's active interval) — the shape of the paper's Fig. 6.
std::string render_gantt(const Schedule& schedule, double seconds_per_column = 1.0);

}  // namespace dmfb
