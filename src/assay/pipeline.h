// pipeline.h — the `SynthesisPipeline` facade: the paper's whole flow
// (architectural-level synthesis -> placement -> droplet routing ->
// optional simulation) behind one entry point.
//
//   PipelineOptions options;
//   options.placer = "two-stage";        // any registered placer name
//   options.seed = 42;                   // reproduces the whole run
//   SynthesisPipeline pipeline(options);
//   PipelineResult result = pipeline.run(pcr_mixing_assay());
//
// Placement backends are resolved by name through the PlacerRegistry
// (core/placer.h), so drivers select "sa", "greedy", "kamer", "optimal",
// "two-stage" — or any custom registration — from configuration text.
// Routing backends resolve the same way through the RouterRegistry
// (sim/router_backend.h): "prioritized", "negotiated", "restart".
// `run_many` executes independent assays across a thread pool for
// throughput; every stochastic stage of item i derives its seed from
// `options.seed` and i, so batches are reproducible from one number.
//
// The flow is optionally a *closed loop*: with `feedback_rounds > 0` the
// pipeline re-places with measured route costs folded into the placement
// objective (the routing-pressure term, CostWeights::gamma) and re-routes,
// keeping the best round — so compact placements stop strangling the
// routes. With `feedback_rounds = 0` and `gamma = 0` (the defaults) the
// classic feed-forward flow runs bit-identically to previous releases.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "assay/assay_library.h"
#include "assay/binder.h"
#include "assay/schedule.h"
#include "assay/scheduler.h"
#include "assay/sequencing_graph.h"
#include "biochip/module_library.h"
#include "core/fti.h"
#include "core/placer.h"
#include "sim/fault.h"
#include "sim/recovery.h"
#include "sim/route_planner.h"
#include "sim/simulator.h"
#include "util/cost_statistic.h"
#include "util/deprecation.h"

namespace dmfb {

/// The pipeline's stages, in execution order.
enum class PipelineStage {
  kBind,      ///< operation -> module-type binding
  kSchedule,  ///< resource-constrained list scheduling
  kPlace,     ///< module placement (pluggable backend)
  kRoute,     ///< concurrent droplet routing at changeovers
  kSimulate,  ///< droplet-level execution (optional)
};

const char* to_string(PipelineStage stage);
std::ostream& operator<<(std::ostream& os, PipelineStage stage);

/// Per-stage progress callback: invoked after each stage completes with the
/// stage, its wall time, and a one-line human-readable summary. run_many
/// invokes it concurrently from worker threads, so it must be thread-safe.
using StageObserver = std::function<void(
    PipelineStage stage, double wall_seconds, const std::string& detail)>;

/// Number of PipelineStage values, for per-stage telemetry arrays.
inline constexpr int kPipelineStageCount = 5;

/// Thread-safe StageObserver adapter: folds every completed stage's wall
/// time into a per-stage CostStatistic (count/min/avg/max), the same
/// accumulator the event simulator keeps internally — so batch drivers
/// (bench_closed_loop, bench_perf_sim) report cross-run stage timing
/// without a profiler. Install `observer()` as PipelineOptions::observer;
/// run_many invokes observers from worker threads, hence the mutex. The
/// collector must outlive every run observing into it.
class StageStatsCollector {
 public:
  StageObserver observer() {
    return [this](PipelineStage stage, double wall_seconds,
                  const std::string&) { record(stage, wall_seconds); };
  }

  void record(PipelineStage stage, double wall_seconds) {
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_[static_cast<std::size_t>(stage)].record(wall_seconds);
  }

  /// Accumulated statistic for one stage (a copy, taken under the lock).
  CostStatistic statistic(PipelineStage stage) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_[static_cast<std::size_t>(stage)];
  }

 private:
  mutable std::mutex mutex_;
  std::array<CostStatistic, kPipelineStageCount> stats_{};
};

/// Everything configurable about one pipeline run — the single options
/// struct superseding the per-stage ones.
struct PipelineOptions {
  /// Binding strategy for `run(graph, library)`; ignored by the overloads
  /// that take an explicit binding (e.g. an AssayCase's Table-1 binding).
  BindingPolicy binding_policy = BindingPolicy::kRoundRobin;
  SchedulerOptions scheduler;

  /// Registry name of the placement backend.
  std::string placer = "sa";
  /// Note: `placer_context.weights.gamma` turns on routing-aware
  /// placement — the pipeline then extracts the schedule's droplet-demand
  /// links (routing::extract_links) and prices them in the placement
  /// objective, even at `feedback_rounds = 0`.
  PlacerContext placer_context;
  /// When false the pipeline stops after scheduling (no placement, FTI,
  /// routing or simulation) — for consumers that only need the schedule.
  bool place = true;

  /// Closed-loop synthesis: after the initial place->route, run up to
  /// this many extra rounds that fold the previous round's *measured*
  /// route costs back into the placement objective
  /// (routing::reweight_links -> placer_context.route_links) and
  /// re-place/re-route with a round seed split from the master seed. The
  /// loop stops early at a placement fixed point, and the best round —
  /// routed plans first, then lowest transport-inclusive makespan, then
  /// lowest placement cost — supplies the result, so feedback never does
  /// worse than round 0. 0 (default) = the classic feed-forward flow,
  /// bit-identical to previous releases when gamma is also 0. Ignored
  /// when `plan_droplet_routes` is false (no route cost to feed back);
  /// with `placer_context.weights.gamma == 0` there is no objective term
  /// for the measured costs to flow into, so rounds degrade to
  /// seed-diverse multi-start placement (best round still wins).
  int feedback_rounds = 0;

  /// Deadline-driven round budget: when positive, the closed loop stops
  /// spending feedback rounds as soon as the best round so far routed
  /// successfully with `transport_makespan_s` at or under this many
  /// seconds — the assay is fast enough, further rounds are wasted work.
  /// 0 (default) = no deadline; the loop is then bit-identical to
  /// previous releases (pinned by tests/test_closed_loop.cpp).
  double deadline_s = 0.0;

  /// Warm-start placement (the synthesis service's memo): handed to the
  /// placement backend on every round via
  /// PlacerContext::initial_placement. Annealing backends seed from it
  /// when compatible instead of the greedy constructive initial; null
  /// (default) = the classic cold start.
  std::shared_ptr<const Placement> initial_placement;

  /// Warm link weights (the service's cross-request route-pressure
  /// ledger): when non-empty and `placer_context.weights.gamma != 0`,
  /// round 0 prices these instead of the schedule's demand-only links, so
  /// a fresh compile starts from congestion measured by earlier compiles
  /// on the same layout. Feedback rounds still reweight from this run's
  /// own measurements. Empty (default) = demand-only links as before.
  std::vector<RouteLink> warm_links;

  /// Plan concurrent droplet routes at every configuration changeover.
  bool plan_droplet_routes = true;
  /// Registry name of the routing backend ("prioritized", "negotiated",
  /// "restart", or any custom registration — sim/router_backend.h).
  std::string router = "prioritized";
  /// `routing.seed` is overridden by `seed`; `routing.threads` fans the
  /// independent per-changeover solves across a thread pool (identical
  /// plans for any thread count — leave at 1 when `run_many` already
  /// saturates the machine with per-item workers).
  RoutePlannerOptions routing;
  /// Chip dimensions for routing/simulation; 0 = the placement canvas.
  int chip_width = 0;
  int chip_height = 0;

  /// Execute the assay droplet-by-droplet on a simulated chip.
  bool simulate = false;
  SimOptions simulation;

  /// Online fault recovery: when `simulate` is true and this plan is
  /// non-empty, the simulate stage drives the OnlineRecoveryEngine
  /// (sim/recovery.h) instead of a plain run — faults fire mid-run and
  /// each detected failure escalates the reconfigure -> reroute ->
  /// replace ladder, resuming from its checkpoint. The outcome lands in
  /// PipelineResult::recovery and the stage observer's detail line.
  FaultInjectionPlan fault_plan;
  /// Knobs/budgets of the online recovery engine (used iff fault_plan is
  /// non-empty). `recovery.sim` is overridden by `simulation`, and the
  /// replace rung's context inherits `placer_context` (re-seeded from
  /// `seed`) unless `recovery.replace_context` is customized.
  RecoveryOptions recovery;

  /// Evaluate the Fault Tolerance Index of the final placement over its
  /// bounding box (the array a designer would fabricate).
  bool evaluate_fault_tolerance = true;

  /// Master seed: overrides placer_context.seed and routing.seed, and
  /// derives per-item seeds in run_many, so one number reproduces any run
  /// or batch.
  std::uint64_t seed = 0xDA7E2005ULL;

  /// Worker threads for run_many (0 = hardware concurrency).
  int threads = 0;

  StageObserver observer;  ///< nullable
};

/// Per-item seeds of a batch under `master_seed`: item i of any batch
/// driver anneals with element i, regardless of which thread or process
/// picks the item up. This is THE batch seed-split — run_many and the
/// multi-process dmfb_batch driver (service/batch.h) both derive their
/// item seeds here, so the same manifest under the same master seed
/// produces bit-identical per-item results in either harness (pinned by
/// tests/test_pipeline.cpp and tests/test_batch.cpp).
std::vector<std::uint64_t> derive_item_seeds(std::uint64_t master_seed,
                                             std::size_t count);

/// Wall time of one completed stage.
struct StageTiming {
  PipelineStage stage = PipelineStage::kBind;
  double wall_seconds = 0.0;
};

/// One completed feedback round's headline numbers (PipelineResult
/// records one entry per round when the closed loop runs).
struct FeedbackRoundResult {
  int round = 0;                ///< 0 = the classic feed-forward round
  std::uint64_t seed = 0;       ///< placement/routing seed of this round
  bool routed = false;          ///< did routing succeed this round?
  /// Transport-inclusive makespan of this round (== makespan_s when the
  /// round's routing failed).
  double transport_makespan_s = 0.0;
  /// The round's placement cost with the gamma (routing-pressure) term
  /// stripped — rounds price gamma over differently-weighted links, so
  /// only the base objective is comparable across rounds.
  double placement_cost = 0.0;
};

/// Everything the flow produced, stage by stage.
struct PipelineResult {
  std::string assay_name;
  std::uint64_t seed = 0;  ///< the seed this run is reproducible from

  /// Per-item batch status: run_many never discards a whole batch for
  /// one failed assay. An item whose compile threw comes back with
  /// ok = false, `error` holding the exception text, and default
  /// (empty) stage artifacts — the other items' results are intact.
  /// Single-assay run() still throws, so interactive callers keep the
  /// exception they expect.
  bool ok = true;
  std::string error;  ///< set iff !ok

  // Architectural-level synthesis.
  Binding binding;
  Schedule schedule;
  /// Makespan of `schedule`, which treats configuration changeovers as
  /// instantaneous. Deprecated as a chip-time estimate: droplet transport
  /// at changeovers is real time — read `transport_makespan_s` (or
  /// `transported_schedule.makespan_s()`) for the makespan the chip
  /// actually needs; `schedule.makespan_s()` still gives the
  /// changeover-free value when that is what you mean.
  DMFB_DEPRECATED(
      "read transport_makespan_s (or schedule.makespan_s() for the "
      "changeover-free value)")
  double makespan_s = 0.0;
  long long peak_concurrent_cells = 0;

  // Physical design. `placement.cost` is the cost breakdown.
  PlacementOutcome placement;
  FtiResult fti;  ///< populated iff options.evaluate_fault_tolerance

  // Fluidic-level results.
  RoutePlan routes;           ///< populated iff options.plan_droplet_routes
  SimulationResult simulation;  ///< populated iff options.simulate
  /// Online fault-recovery telemetry; populated iff options.simulate and
  /// options.fault_plan is non-empty (faults_injected counts the planned
  /// faults that actually fired).
  RecoveryReport recovery;

  /// The schedule with every changeover's measured transport time folded
  /// into module start times (fold_transport, sim/route_planner.h).
  /// Populated iff routing ran and succeeded; its makespan_s() is
  /// `transport_makespan_s`.
  Schedule transported_schedule;
  /// Transport-inclusive makespan: schedule plus routed changeover
  /// transport at the chip's actuation rate. Falls back to `makespan_s`
  /// when routing did not run or failed.
  double transport_makespan_s = 0.0;

  /// Per-round history of the closed loop (empty when
  /// options.feedback_rounds == 0); entry [selected_round] produced the
  /// placement/routes above.
  std::vector<FeedbackRoundResult> feedback_history;
  int selected_round = 0;

  std::vector<StageTiming> stage_times;  ///< in execution order

  const CostBreakdown& cost() const { return placement.cost; }
  double total_wall_seconds() const;
  /// Summed wall time of one stage over every time it ran (feedback
  /// rounds re-run place/route; 0 when the stage never ran).
  double stage_seconds(PipelineStage stage) const;
};

/// End-to-end compile driver: bind -> schedule -> place -> route
/// (-> simulate). Reentrant; one instance may serve concurrent runs.
class SynthesisPipeline {
 public:
  explicit SynthesisPipeline(PipelineOptions options = {});

  const PipelineOptions& options() const { return options_; }

  /// Full flow with automatic binding per options().binding_policy.
  PipelineResult run(const SequencingGraph& graph,
                     const ModuleLibrary& library) const;

  /// Full flow with a caller-provided binding (e.g. the paper's Table 1).
  PipelineResult run(const SequencingGraph& graph,
                     const Binding& binding) const;

  /// Full flow on a benchmark case, using the case's binding and scheduler
  /// constraints (options().scheduler is ignored).
  PipelineResult run(const AssayCase& assay) const;

  /// Runs independent assays across a thread pool; results are in input
  /// order. Item i's stochastic stages are seeded with
  /// derive_item_seeds(options().seed, n)[i]. A failed item does not
  /// discard the batch: its entry carries ok = false and the exception
  /// text in `error` (see PipelineResult::ok), and every other item's
  /// result is returned normally.
  std::vector<PipelineResult> run_many(
      std::span<const SequencingGraph> graphs,
      const ModuleLibrary& library) const;
  std::vector<PipelineResult> run_many(std::span<const AssayCase> assays) const;

 private:
  PipelineResult run_bound(const SequencingGraph& graph, Binding binding,
                           const SchedulerOptions& scheduler,
                           double bind_seconds, std::uint64_t seed) const;
  std::vector<PipelineResult> run_indexed(
      std::size_t count,
      const std::function<PipelineResult(std::size_t, std::uint64_t)>& one)
      const;

  PipelineOptions options_;
};

}  // namespace dmfb
