#include "assay/schedule.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace dmfb {

void Schedule::add(ScheduledModule module) {
  if (module.end_s < module.start_s) {
    throw std::invalid_argument("Schedule: module ends before it starts");
  }
  modules_.push_back(std::move(module));
}

double Schedule::makespan_s() const {
  double makespan = 0.0;
  for (const auto& m : modules_) makespan = std::max(makespan, m.end_s);
  return makespan;
}

void Schedule::shift_from(double from_s, double delta_s) {
  if (delta_s < 0.0) {
    throw std::invalid_argument("Schedule::shift_from: negative delta");
  }
  if (delta_s == 0.0) return;
  constexpr double kEps = 1e-9;
  for (auto& m : modules_) {
    if (m.start_s + kEps < from_s) continue;
    m.start_s += delta_s;
    m.end_s += delta_s;
  }
}

void Schedule::retime(int index, double start_s, double end_s) {
  if (end_s < start_s) {
    throw std::invalid_argument("Schedule::retime: end before start");
  }
  ScheduledModule& m = modules_.at(static_cast<std::size_t>(index));
  m.start_s = start_s;
  m.end_s = end_s;
}

std::vector<TimeSlice> Schedule::time_slices() const {
  std::set<double> boundaries;
  for (const auto& m : modules_) {
    boundaries.insert(m.start_s);
    boundaries.insert(m.end_s);
  }
  std::vector<TimeSlice> slices;
  if (boundaries.size() < 2) return slices;

  auto it = boundaries.begin();
  double prev = *it++;
  for (; it != boundaries.end(); ++it) {
    const double next = *it;
    TimeSlice slice{prev, next, {}};
    for (int i = 0; i < module_count(); ++i) {
      if (modules_[i].start_s <= prev && next <= modules_[i].end_s) {
        slice.active.push_back(i);
      }
    }
    if (!slice.active.empty()) slices.push_back(std::move(slice));
    prev = next;
  }
  return slices;
}

std::vector<int> Schedule::active_at(double t) const {
  std::vector<int> active;
  for (int i = 0; i < module_count(); ++i) {
    if (modules_[i].start_s <= t && t < modules_[i].end_s) {
      active.push_back(i);
    }
  }
  return active;
}

long long Schedule::peak_concurrent_cells() const {
  long long peak = 0;
  for (const auto& slice : time_slices()) {
    long long cells = 0;
    for (int index : slice.active) {
      cells += modules_[index].spec.footprint_cells();
    }
    peak = std::max(peak, cells);
  }
  return peak;
}

std::vector<std::string> Schedule::validate_against(
    const SequencingGraph& graph) const {
  std::vector<std::string> violations;

  // Map operation id -> schedule index (helper modules have op_id == -1).
  std::vector<int> by_op(graph.operation_count(), -1);
  for (int i = 0; i < module_count(); ++i) {
    const OperationId op = modules_[i].op_id;
    if (op < 0) continue;
    if (op >= graph.operation_count()) {
      violations.push_back("module '" + modules_[i].label +
                           "' references an operation outside the graph");
      continue;
    }
    if (by_op[op] != -1) {
      violations.push_back("operation '" + graph.operation(op).label +
                           "' is scheduled twice");
      continue;
    }
    by_op[op] = i;
  }

  for (const auto& op : graph.operations()) {
    const int v = op.id < static_cast<int>(by_op.size()) ? by_op[op.id] : -1;
    if (v == -1) continue;
    for (OperationId pred : graph.predecessors(op.id)) {
      const int u = by_op[pred];
      if (u == -1) continue;
      if (modules_[v].start_s + 1e-9 < modules_[u].end_s) {
        std::ostringstream os;
        os << "precedence violated: '" << modules_[v].label << "' starts at "
           << modules_[v].start_s << "s before predecessor '"
           << modules_[u].label << "' ends at " << modules_[u].end_s << "s";
        violations.push_back(os.str());
      }
    }
  }
  return violations;
}

}  // namespace dmfb
