#include "assay/binder.h"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace dmfb {

const char* to_string(BindingPolicy policy) {
  switch (policy) {
    case BindingPolicy::kFastest:
      return "fastest";
    case BindingPolicy::kSmallest:
      return "smallest";
    case BindingPolicy::kRoundRobin:
      return "round-robin";
  }
  return "?";
}

template <>
BindingPolicy from_string<BindingPolicy>(std::string_view text) {
  if (text == "fastest") return BindingPolicy::kFastest;
  if (text == "smallest") return BindingPolicy::kSmallest;
  if (text == "round-robin") return BindingPolicy::kRoundRobin;
  throw std::invalid_argument(
      "unknown BindingPolicy \"" + std::string(text) +
      "\" (expected one of: fastest, smallest, round-robin)");
}

std::ostream& operator<<(std::ostream& os, BindingPolicy policy) {
  return os << to_string(policy);
}

std::istream& operator>>(std::istream& is, BindingPolicy& policy) {
  std::string token;
  is >> token;
  policy = from_string<BindingPolicy>(token);
  return is;
}

Binding bind_operations(const SequencingGraph& graph,
                        const ModuleLibrary& library, BindingPolicy policy) {
  Binding binding;
  std::map<ModuleKind, std::vector<ModuleSpec>> candidates;
  std::map<ModuleKind, std::size_t> next_index;

  for (OperationId id : graph.reconfigurable_operations()) {
    const ModuleKind kind = module_kind_for(graph.operation(id).type);
    auto [it, inserted] = candidates.try_emplace(kind);
    if (inserted) {
      it->second = library.by_kind(kind);
      if (it->second.empty()) {
        throw std::runtime_error(
            std::string("bind_operations: library has no module of kind ") +
            to_string(kind));
      }
    }
    const auto& specs = it->second;
    switch (policy) {
      case BindingPolicy::kFastest:
        binding.emplace(id, specs.front());
        break;
      case BindingPolicy::kSmallest: {
        const ModuleSpec* best = &specs.front();
        for (const auto& spec : specs) {
          if (spec.footprint_cells() < best->footprint_cells()) best = &spec;
        }
        binding.emplace(id, *best);
        break;
      }
      case BindingPolicy::kRoundRobin: {
        std::size_t& cursor = next_index[kind];
        binding.emplace(id, specs[cursor % specs.size()]);
        ++cursor;
        break;
      }
    }
  }
  return binding;
}

std::vector<std::string> validate_binding(const SequencingGraph& graph,
                                          const Binding& binding) {
  std::vector<std::string> problems;
  for (OperationId id : graph.reconfigurable_operations()) {
    const auto it = binding.find(id);
    const Operation& op = graph.operation(id);
    if (it == binding.end()) {
      problems.push_back("operation '" + op.label + "' is unbound");
      continue;
    }
    const ModuleSpec& spec = it->second;
    if (spec.kind != module_kind_for(op.type)) {
      problems.push_back("operation '" + op.label + "' bound to a " +
                         to_string(spec.kind) + " but needs a " +
                         to_string(module_kind_for(op.type)));
    }
    if (spec.kind != ModuleKind::kStorage && spec.duration_s <= 0.0) {
      problems.push_back("operation '" + op.label +
                         "' bound to module with non-positive duration");
    }
    if (spec.functional_width <= 0 || spec.functional_height <= 0) {
      problems.push_back("operation '" + op.label +
                         "' bound to module with empty functional region");
    }
  }
  for (const auto& [id, spec] : binding) {
    if (id < 0 || id >= graph.operation_count()) {
      problems.push_back("binding references unknown operation id " +
                         std::to_string(id));
    } else if (!is_reconfigurable(graph.operation(id).type)) {
      problems.push_back("operation '" + graph.operation(id).label +
                         "' is not reconfigurable but has a binding");
    }
  }
  return problems;
}

}  // namespace dmfb
