#include "assay/synthesis.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dmfb {

SynthesisResult synthesize(const SequencingGraph& graph,
                           const ModuleLibrary& library,
                           const SynthesisOptions& options) {
  SynthesisResult result;
  result.binding = bind_operations(graph, library, options.binding_policy);
  result.schedule = list_schedule(graph, result.binding, options.scheduler);
  result.makespan_s = result.schedule.makespan_s();
  result.peak_concurrent_cells = result.schedule.peak_concurrent_cells();
  return result;
}

SynthesisResult synthesize_with_binding(const SequencingGraph& graph,
                                        const Binding& binding,
                                        const SchedulerOptions& options) {
  SynthesisResult result;
  result.binding = binding;
  result.schedule = list_schedule(graph, binding, options);
  result.makespan_s = result.schedule.makespan_s();
  result.peak_concurrent_cells = result.schedule.peak_concurrent_cells();
  return result;
}

std::string render_gantt(const Schedule& schedule, double seconds_per_column) {
  std::ostringstream os;
  const double makespan = schedule.makespan_s();
  const int columns =
      static_cast<int>(std::ceil(makespan / seconds_per_column));

  std::size_t label_width = 0;
  for (const auto& m : schedule.modules()) {
    label_width = std::max(label_width, m.label.size());
  }

  for (const auto& m : schedule.modules()) {
    os << m.label << std::string(label_width - m.label.size(), ' ') << " |";
    for (int c = 0; c < columns; ++c) {
      const double t0 = c * seconds_per_column;
      const double t1 = t0 + seconds_per_column;
      const bool active = m.start_s < t1 && t0 < m.end_s;
      os << (active ? '#' : ' ');
    }
    os << "|  " << m.start_s << "s - " << m.end_s << "s  ("
       << m.spec.footprint_width() << 'x' << m.spec.footprint_height()
       << " cells, " << m.spec.name << ")\n";
  }
  os << std::string(label_width, ' ') << " 0s";
  if (columns > 4) {
    os << std::string(static_cast<std::size_t>(columns) - 2, ' ')
       << makespan << "s";
  }
  os << '\n';
  return os.str();
}

}  // namespace dmfb
