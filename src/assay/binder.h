// binder.h — resource binding: assigning a module type to every
// reconfigurable operation of a sequencing graph (the first half of
// architectural-level synthesis; Table 1 of the paper is one binding).
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "assay/sequencing_graph.h"
#include "biochip/module_library.h"
#include "util/enum_text.h"

namespace dmfb {

/// Module type chosen for each reconfigurable operation.
using Binding = std::map<OperationId, ModuleSpec>;

/// Strategy for automatic binding when the designer does not dictate one.
enum class BindingPolicy {
  kFastest,     ///< always the lowest-latency spec of the right kind
  kSmallest,    ///< always the smallest-footprint spec of the right kind
  kRoundRobin,  ///< cycle through specs of the right kind (diversity, as in
                ///< the paper's PCR binding which mixes four mixer shapes)
};

/// Textual round-trip ("fastest", "smallest", "round-robin") so configs can
/// name the policy; `from_string` and `>>` throw std::invalid_argument on
/// unknown text.
const char* to_string(BindingPolicy policy);
template <>
BindingPolicy from_string<BindingPolicy>(std::string_view text);
std::ostream& operator<<(std::ostream& os, BindingPolicy policy);
std::istream& operator>>(std::istream& is, BindingPolicy& policy);

/// Produces a binding for every reconfigurable operation of `graph` using
/// modules from `library`. Throws std::runtime_error when the library has
/// no module of a required kind.
Binding bind_operations(const SequencingGraph& graph,
                        const ModuleLibrary& library, BindingPolicy policy);

/// Validation: every reconfigurable op bound, kinds match, durations > 0
/// for timed kinds. Returns human-readable problems (empty = valid).
std::vector<std::string> validate_binding(const SequencingGraph& graph,
                                          const Binding& binding);

}  // namespace dmfb
