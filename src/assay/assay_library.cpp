#include "assay/assay_library.h"

#include <stdexcept>

namespace dmfb {
namespace {

/// Looks up a library spec or throws with a clear message.
ModuleSpec require_spec(const ModuleLibrary& library, const std::string& name) {
  auto spec = library.find(name);
  if (!spec) {
    throw std::runtime_error("assay_library: module library is missing '" +
                             name + "'");
  }
  return *spec;
}

}  // namespace

SequencingGraph pcr_mixing_graph() {
  SequencingGraph graph("pcr-mixing-stage");

  // The eight PCR master-mix constituents (Zhang et al., CRC 2002).
  const char* reagents[8] = {"Tris-HCl", "KCl",     "gelatin", "beacons",
                             "primer",   "AmpliTaq", "dNTP",    "LambdaDNA"};
  OperationId dispense[8];
  for (int i = 0; i < 8; ++i) {
    dispense[i] = graph.add_operation(OperationType::kDispense,
                                      std::string("D") + std::to_string(i + 1),
                                      reagents[i]);
  }

  // Binary mixing tree M1..M7 (Fig. 5): leaves M1..M4, then M5 = M1+M2,
  // M6 = M3+M4, root M7 = M5+M6.
  OperationId mix[7];
  for (int i = 0; i < 7; ++i) {
    mix[i] = graph.add_operation(OperationType::kMix,
                                 "M" + std::to_string(i + 1));
  }
  for (int i = 0; i < 4; ++i) {
    graph.add_dependency(dispense[2 * i], mix[i]);
    graph.add_dependency(dispense[2 * i + 1], mix[i]);
  }
  graph.add_dependency(mix[0], mix[4]);  // M1 -> M5
  graph.add_dependency(mix[1], mix[4]);  // M2 -> M5
  graph.add_dependency(mix[2], mix[5]);  // M3 -> M6
  graph.add_dependency(mix[3], mix[5]);  // M4 -> M6
  graph.add_dependency(mix[4], mix[6]);  // M5 -> M7
  graph.add_dependency(mix[5], mix[6]);  // M6 -> M7

  const OperationId out =
      graph.add_operation(OperationType::kOutput, "thermocycle");
  graph.add_dependency(mix[6], out);
  return graph;
}

Binding pcr_table1_binding(const SequencingGraph& pcr_graph) {
  const ModuleLibrary library = ModuleLibrary::standard();
  // Module names per Table 1 row, in M1..M7 order.
  const char* spec_names[7] = {"mixer-2x2", "mixer-1x4", "mixer-2x3",
                               "mixer-1x4", "mixer-1x4", "mixer-2x2",
                               "mixer-2x4"};
  Binding binding;
  int next_mixer = 0;
  for (const auto& op : pcr_graph.operations()) {
    if (op.type != OperationType::kMix) continue;
    if (next_mixer >= 7) {
      throw std::invalid_argument(
          "pcr_table1_binding: graph has more than 7 mix operations");
    }
    binding.emplace(op.id, require_spec(library, spec_names[next_mixer]));
    ++next_mixer;
  }
  if (next_mixer != 7) {
    throw std::invalid_argument(
        "pcr_table1_binding: graph does not have exactly 7 mix operations");
  }
  return binding;
}

AssayCase pcr_mixing_assay() {
  AssayCase assay;
  assay.name = "pcr-mixing-stage";
  assay.graph = pcr_mixing_graph();
  assay.binding = pcr_table1_binding(assay.graph);
  // The paper's schedule keeps the active area small enough for a 63-cell
  // chip; two concurrent mixers reproduces that resource profile.
  assay.scheduler_options.constraints.max_concurrent_modules = 2;
  assay.scheduler_options.insert_storage = true;
  return assay;
}

AssayCase multiplexed_diagnostics_assay(int samples, int reagents,
                                        const ModuleLibrary& library) {
  if (samples <= 0 || reagents <= 0) {
    throw std::invalid_argument(
        "multiplexed_diagnostics_assay: counts must be positive");
  }
  AssayCase assay;
  assay.name = "in-vitro-diagnostics-" + std::to_string(samples) + "x" +
               std::to_string(reagents);
  SequencingGraph graph(assay.name);

  const auto mixers = library.by_kind(ModuleKind::kMixer);
  const auto detector = require_spec(library, "detector-1x1");
  if (mixers.empty()) {
    throw std::runtime_error(
        "multiplexed_diagnostics_assay: no mixers in library");
  }

  int mixer_cursor = 0;
  for (int s = 0; s < samples; ++s) {
    for (int r = 0; r < reagents; ++r) {
      const std::string pair =
          "S" + std::to_string(s + 1) + "R" + std::to_string(r + 1);
      const OperationId ds = graph.add_operation(
          OperationType::kDispense, "D(" + pair + ".s)",
          "sample-" + std::to_string(s + 1));
      const OperationId dr = graph.add_operation(
          OperationType::kDispense, "D(" + pair + ".r)",
          "reagent-" + std::to_string(r + 1));
      const OperationId mix =
          graph.add_operation(OperationType::kMix, "Mix(" + pair + ")");
      const OperationId det =
          graph.add_operation(OperationType::kDetect, "Det(" + pair + ")");
      const OperationId out =
          graph.add_operation(OperationType::kOutput, "Out(" + pair + ")");
      graph.add_dependency(ds, mix);
      graph.add_dependency(dr, mix);
      graph.add_dependency(mix, det);
      graph.add_dependency(det, out);

      assay.binding.emplace(mix, mixers[mixer_cursor % mixers.size()]);
      assay.binding.emplace(det, detector);
      ++mixer_cursor;
    }
  }

  assay.graph = std::move(graph);
  assay.scheduler_options.constraints.max_concurrent_modules = 4;
  // One optical detection site is typical for these chips.
  assay.scheduler_options.constraints
      .max_concurrent_by_kind[ModuleKind::kDetector] = 1;
  return assay;
}

AssayCase protein_dilution_assay(int levels, const ModuleLibrary& library) {
  if (levels <= 0 || levels > 6) {
    throw std::invalid_argument(
        "protein_dilution_assay: levels must be in [1, 6]");
  }
  AssayCase assay;
  assay.name = "protein-dilution-" + std::to_string(levels);
  SequencingGraph graph(assay.name);

  const auto dilutor = require_spec(library, "dilutor-2x4");
  const auto detector = require_spec(library, "detector-1x1");

  const OperationId protein =
      graph.add_operation(OperationType::kDispense, "D(protein)", "protein");
  const OperationId buffer0 =
      graph.add_operation(OperationType::kDispense, "D(buffer0)", "buffer");
  const OperationId root =
      graph.add_operation(OperationType::kDilute, "Dlt(root)");
  graph.add_dependency(protein, root);
  graph.add_dependency(buffer0, root);
  assay.binding.emplace(root, dilutor);

  // Each dilution level halves concentration; every dilutor consumes its
  // parent droplet plus fresh buffer and produces two droplets, one of
  // which continues down the tree.
  std::vector<OperationId> frontier{root};
  for (int level = 1; level < levels; ++level) {
    std::vector<OperationId> next;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      for (int child = 0; child < 2; ++child) {
        const std::string tag =
            std::to_string(level) + "." + std::to_string(2 * i + child);
        const OperationId buffer = graph.add_operation(
            OperationType::kDispense, "D(buffer" + tag + ")", "buffer");
        const OperationId dilute =
            graph.add_operation(OperationType::kDilute, "Dlt(" + tag + ")");
        graph.add_dependency(frontier[i], dilute);
        graph.add_dependency(buffer, dilute);
        assay.binding.emplace(dilute, dilutor);
        next.push_back(dilute);
      }
    }
    frontier = std::move(next);
  }

  // Detect every leaf concentration.
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const OperationId det = graph.add_operation(
        OperationType::kDetect, "Det(" + std::to_string(i) + ")");
    const OperationId out = graph.add_operation(
        OperationType::kOutput, "Out(" + std::to_string(i) + ")");
    graph.add_dependency(frontier[i], det);
    graph.add_dependency(det, out);
    assay.binding.emplace(det, detector);
  }

  assay.graph = std::move(graph);
  assay.scheduler_options.constraints.max_concurrent_modules = 4;
  assay.scheduler_options.constraints
      .max_concurrent_by_kind[ModuleKind::kDetector] = 1;
  return assay;
}

}  // namespace dmfb
