#include "assay/pipeline.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "biochip/chip.h"
#include "sim/router_backend.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace dmfb {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

const char* to_string(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kBind:
      return "bind";
    case PipelineStage::kSchedule:
      return "schedule";
    case PipelineStage::kPlace:
      return "place";
    case PipelineStage::kRoute:
      return "route";
    case PipelineStage::kSimulate:
      return "simulate";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, PipelineStage stage) {
  return os << to_string(stage);
}

double PipelineResult::total_wall_seconds() const {
  double total = 0.0;
  for (const auto& timing : stage_times) total += timing.wall_seconds;
  return total;
}

double PipelineResult::stage_seconds(PipelineStage stage) const {
  for (const auto& timing : stage_times) {
    if (timing.stage == stage) return timing.wall_seconds;
  }
  return 0.0;
}

SynthesisPipeline::SynthesisPipeline(PipelineOptions options)
    : options_(std::move(options)) {}

PipelineResult SynthesisPipeline::run(const SequencingGraph& graph,
                                      const ModuleLibrary& library) const {
  const auto start = Clock::now();
  Binding binding = bind_operations(graph, library, options_.binding_policy);
  return run_bound(graph, std::move(binding), options_.scheduler,
                   seconds_since(start), options_.seed);
}

PipelineResult SynthesisPipeline::run(const SequencingGraph& graph,
                                      const Binding& binding) const {
  return run_bound(graph, binding, options_.scheduler, 0.0, options_.seed);
}

PipelineResult SynthesisPipeline::run(const AssayCase& assay) const {
  PipelineResult result = run_bound(assay.graph, assay.binding,
                                    assay.scheduler_options, 0.0,
                                    options_.seed);
  if (!assay.name.empty()) result.assay_name = assay.name;
  return result;
}

PipelineResult SynthesisPipeline::run_bound(const SequencingGraph& graph,
                                            Binding binding,
                                            const SchedulerOptions& scheduler,
                                            double bind_seconds,
                                            std::uint64_t seed) const {
  PipelineResult result;
  result.assay_name = graph.name();
  result.seed = seed;
  result.binding = std::move(binding);

  const auto record = [&](PipelineStage stage, double wall_seconds,
                          const std::string& detail) {
    result.stage_times.push_back(StageTiming{stage, wall_seconds});
    if (options_.observer) options_.observer(stage, wall_seconds, detail);
  };

  {
    std::ostringstream detail;
    detail << result.binding.size() << " operations bound";
    record(PipelineStage::kBind, bind_seconds, detail.str());
  }

  // Schedule: resource-constrained list scheduling.
  {
    const auto start = Clock::now();
    result.schedule = list_schedule(graph, result.binding, scheduler);
    result.makespan_s = result.schedule.makespan_s();
    result.peak_concurrent_cells = result.schedule.peak_concurrent_cells();
    std::ostringstream detail;
    detail << result.schedule.module_count() << " modules, makespan "
           << result.makespan_s << " s";
    record(PipelineStage::kSchedule, seconds_since(start), detail.str());
  }

  // Synthesis-only runs stop here; the downstream stages all consume the
  // placement.
  if (!options_.place) return result;

  // Place: pluggable backend, reproducible from the run's seed.
  {
    const auto start = Clock::now();
    const std::unique_ptr<Placer> placer = make_placer(options_.placer);
    PlacerContext context = options_.placer_context;
    context.seed = seed;
    result.placement = placer->place(result.schedule, context);
    if (options_.evaluate_fault_tolerance) {
      result.fti = evaluate_fti(result.placement.placement,
                                context.fti_options);
    }
    std::ostringstream detail;
    detail << placer->name() << ": " << result.placement.cost.area_cells
           << " cells";
    if (options_.evaluate_fault_tolerance) {
      detail << ", FTI " << result.fti.fti();
    }
    record(PipelineStage::kPlace, seconds_since(start), detail.str());
  }

  const Rect box = result.placement.placement.bounding_box();
  const int chip_width =
      options_.chip_width > 0
          ? options_.chip_width
          : std::max(result.placement.placement.canvas_width(), box.right());
  const int chip_height =
      options_.chip_height > 0
          ? options_.chip_height
          : std::max(result.placement.placement.canvas_height(), box.top());

  // Route: concurrent droplet routing at configuration changeovers,
  // through the pluggable backend resolved from the registry.
  if (options_.plan_droplet_routes) {
    const auto start = Clock::now();
    const std::unique_ptr<Router> router = make_router(options_.router);
    RoutePlannerOptions routing = options_.routing;
    routing.seed = seed;
    result.routes =
        router->plan(graph, result.schedule, result.placement.placement,
                     chip_width, chip_height, routing);
    std::ostringstream detail;
    detail << router->name() << ": ";
    if (result.routes.success) {
      detail << result.routes.changeovers.size() << " changeovers, "
             << result.routes.total_steps << " droplet steps ("
             << result.routes.total_moved_cells << " cells moved)";
    } else {
      detail << "routing failed: " << result.routes.failure_reason;
    }
    record(PipelineStage::kRoute, seconds_since(start), detail.str());
  }

  // Simulate: droplet-level execution on a virtual chip.
  if (options_.simulate) {
    const auto start = Clock::now();
    const Chip chip(chip_width, chip_height);
    const Simulator simulator(options_.simulation);
    result.simulation = simulator.run(graph, result.schedule,
                                      result.placement.placement, chip);
    std::ostringstream detail;
    if (result.simulation.success) {
      detail << "completed in " << result.simulation.makespan_s << " s, "
             << result.simulation.routes_planned << " routes";
    } else {
      detail << "simulation failed: " << result.simulation.failure_reason;
    }
    record(PipelineStage::kSimulate, seconds_since(start), detail.str());
  }

  return result;
}

std::vector<PipelineResult> SynthesisPipeline::run_indexed(
    std::size_t count,
    const std::function<PipelineResult(std::size_t, std::uint64_t)>& one)
    const {
  std::vector<PipelineResult> results(count);
  if (count == 0) return results;

  // Per-item seeds derived from the master seed, independent of the order
  // in which workers pick items up.
  std::vector<std::uint64_t> seeds(count);
  SplitMix64 splitter(options_.seed);
  for (auto& seed : seeds) seed = splitter.next();

  const auto errors = detail::for_each_index(
      count, options_.threads,
      [&](std::size_t index) { results[index] = one(index, seeds[index]); });
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

std::vector<PipelineResult> SynthesisPipeline::run_many(
    std::span<const SequencingGraph> graphs,
    const ModuleLibrary& library) const {
  return run_indexed(graphs.size(), [&](std::size_t index,
                                        std::uint64_t seed) {
    const auto start = Clock::now();
    Binding binding =
        bind_operations(graphs[index], library, options_.binding_policy);
    return run_bound(graphs[index], std::move(binding), options_.scheduler,
                     seconds_since(start), seed);
  });
}

std::vector<PipelineResult> SynthesisPipeline::run_many(
    std::span<const AssayCase> assays) const {
  return run_indexed(assays.size(), [&](std::size_t index,
                                        std::uint64_t seed) {
    const AssayCase& assay = assays[index];
    PipelineResult result = run_bound(assay.graph, assay.binding,
                                      assay.scheduler_options, 0.0, seed);
    if (!assay.name.empty()) result.assay_name = assay.name;
    return result;
  });
}

}  // namespace dmfb
