#include "assay/pipeline.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "biochip/chip.h"
#include "sim/router_backend.h"
#include "sim/sim_engine.h"
#include "util/cost_statistic.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace dmfb {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

const char* to_string(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kBind:
      return "bind";
    case PipelineStage::kSchedule:
      return "schedule";
    case PipelineStage::kPlace:
      return "place";
    case PipelineStage::kRoute:
      return "route";
    case PipelineStage::kSimulate:
      return "simulate";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, PipelineStage stage) {
  return os << to_string(stage);
}

std::vector<std::uint64_t> derive_item_seeds(std::uint64_t master_seed,
                                             std::size_t count) {
  // One SplitMix64 walk from the master seed, consumed in item order —
  // independent of the order workers pick items up. Changing this
  // derivation would silently fork every recorded batch fingerprint;
  // it is pinned by tests.
  std::vector<std::uint64_t> seeds(count);
  SplitMix64 splitter(master_seed);
  for (auto& seed : seeds) seed = splitter.next();
  return seeds;
}

double PipelineResult::total_wall_seconds() const {
  double total = 0.0;
  for (const auto& timing : stage_times) total += timing.wall_seconds;
  return total;
}

double PipelineResult::stage_seconds(PipelineStage stage) const {
  double total = 0.0;
  for (const auto& timing : stage_times) {
    if (timing.stage == stage) total += timing.wall_seconds;
  }
  return total;
}

SynthesisPipeline::SynthesisPipeline(PipelineOptions options)
    : options_(std::move(options)) {}

PipelineResult SynthesisPipeline::run(const SequencingGraph& graph,
                                      const ModuleLibrary& library) const {
  const auto start = Clock::now();
  Binding binding = bind_operations(graph, library, options_.binding_policy);
  return run_bound(graph, std::move(binding), options_.scheduler,
                   seconds_since(start), options_.seed);
}

PipelineResult SynthesisPipeline::run(const SequencingGraph& graph,
                                      const Binding& binding) const {
  return run_bound(graph, binding, options_.scheduler, 0.0, options_.seed);
}

PipelineResult SynthesisPipeline::run(const AssayCase& assay) const {
  PipelineResult result = run_bound(assay.graph, assay.binding,
                                    assay.scheduler_options, 0.0,
                                    options_.seed);
  if (!assay.name.empty()) result.assay_name = assay.name;
  return result;
}

PipelineResult SynthesisPipeline::run_bound(const SequencingGraph& graph,
                                            Binding binding,
                                            const SchedulerOptions& scheduler,
                                            double bind_seconds,
                                            std::uint64_t seed) const {
  PipelineResult result;
  result.assay_name = graph.name();
  result.seed = seed;
  result.binding = std::move(binding);

  const auto record = [&](PipelineStage stage, double wall_seconds,
                          const std::string& detail) {
    result.stage_times.push_back(StageTiming{stage, wall_seconds});
    if (options_.observer) options_.observer(stage, wall_seconds, detail);
  };

  {
    std::ostringstream detail;
    detail << result.binding.size() << " operations bound";
    record(PipelineStage::kBind, bind_seconds, detail.str());
  }

  // Schedule: resource-constrained list scheduling.
  {
    const auto start = Clock::now();
    result.schedule = list_schedule(graph, result.binding, scheduler);
    result.makespan_s = result.schedule.makespan_s();
    // Until routing measures transport, the best chip-time estimate is
    // the instantaneous-changeover makespan; routed rounds overwrite it.
    result.transport_makespan_s = result.makespan_s;
    result.peak_concurrent_cells = result.schedule.peak_concurrent_cells();
    std::ostringstream detail;
    detail << result.schedule.module_count() << " modules, makespan "
           << result.makespan_s << " s";
    record(PipelineStage::kSchedule, seconds_since(start), detail.str());
  }

  // Synthesis-only runs stop here; the downstream stages all consume the
  // placement.
  if (!options_.place) return result;

  // The closed loop engages when measured route costs can actually flow
  // backward; the routing-pressure term alone (gamma != 0) only needs the
  // static demand links.
  const bool closed_loop =
      options_.feedback_rounds > 0 && options_.plan_droplet_routes;
  // Measured route costs can only flow into the objective through the
  // gamma term; without it, feedback rounds degrade to seed-diverse
  // multi-start (still best-round-wins) and links are never needed.
  const bool use_links = options_.placer_context.weights.gamma != 0.0;
  std::vector<RouteLink> links;
  if (use_links) links = routing::extract_links(graph, result.schedule);
  // The service's cross-request ledger, when present, replaces the
  // demand-only weights for round 0; this run's own feedback rounds still
  // reweight from the fresh demand links.
  const std::vector<RouteLink>& round0_links =
      (use_links && !options_.warm_links.empty()) ? options_.warm_links
                                                  : links;

  // One synthesis round: place (+ FTI), then route. Rounds differ only in
  // seed and link weights; round 0 with the master seed and demand-only
  // links reproduces the classic feed-forward flow exactly.
  struct Round {
    PlacementOutcome placement;
    FtiResult fti;
    RoutePlan routes;
    Schedule transported;
    double transport_makespan_s = 0.0;
    int chip_width = 0;
    int chip_height = 0;
  };

  const auto run_round = [&](int round, std::uint64_t round_seed,
                             const std::vector<RouteLink>& round_links) {
    Round r;
    const std::string prefix =
        closed_loop ? "round " + std::to_string(round) + ": " : "";
    {
      const auto start = Clock::now();
      const std::unique_ptr<Placer> placer = make_placer(options_.placer);
      PlacerContext context = options_.placer_context;
      context.seed = round_seed;
      if (use_links) context.route_links = round_links;
      if (options_.initial_placement) {
        context.initial_placement = options_.initial_placement;
      }
      r.placement = placer->place(result.schedule, context);
      if (options_.evaluate_fault_tolerance) {
        r.fti = evaluate_fti(r.placement.placement, context.fti_options);
      }
      std::ostringstream detail;
      detail << prefix << placer->name() << ": "
             << r.placement.cost.area_cells << " cells";
      if (options_.evaluate_fault_tolerance) {
        detail << ", FTI " << r.fti.fti();
      }
      // Portfolio backends report per-replica loop telemetry: throughput
      // spread across replicas, exchange traffic and the speculation
      // hit-rate (kBatched replicas only).
      if (!r.placement.replica_stats.empty()) {
        CostStatistic throughput;
        for (const AnnealingStats& rs : r.placement.replica_stats) {
          throughput.record(rs.proposals_per_second);
        }
        const AnnealingStats& agg = r.placement.stats;
        detail << "; replicas=" << r.placement.replica_stats.size()
               << " exchanges=" << agg.exchanges_accepted << "/"
               << agg.exchanges_attempted
               << " proposals/s min/avg/max=" << throughput.minimum() << "/"
               << throughput.average() << "/" << throughput.max;
        if (agg.speculated > 0) {
          detail << " spec-hit=" << static_cast<double>(agg.speculation_hits) /
                                        static_cast<double>(agg.speculated);
        }
      }
      record(PipelineStage::kPlace, seconds_since(start), detail.str());
    }

    const Rect box = r.placement.placement.bounding_box();
    r.chip_width =
        options_.chip_width > 0
            ? options_.chip_width
            : std::max(r.placement.placement.canvas_width(), box.right());
    r.chip_height =
        options_.chip_height > 0
            ? options_.chip_height
            : std::max(r.placement.placement.canvas_height(), box.top());

    // Route: concurrent droplet routing at configuration changeovers,
    // through the pluggable backend resolved from the registry.
    r.transport_makespan_s = result.makespan_s;
    if (options_.plan_droplet_routes) {
      const auto start = Clock::now();
      const std::unique_ptr<Router> router = make_router(options_.router);
      RoutePlannerOptions routing = options_.routing;
      routing.seed = round_seed;
      r.routes =
          router->plan(graph, result.schedule, r.placement.placement,
                       r.chip_width, r.chip_height, routing);
      std::ostringstream detail;
      detail << prefix << router->name() << ": ";
      if (r.routes.success) {
        r.transported = fold_transport(result.schedule, r.routes);
        r.transport_makespan_s = r.transported.makespan_s();
        detail << r.routes.changeovers.size() << " changeovers, "
               << r.routes.total_steps << " droplet steps ("
               << r.routes.total_moved_cells
               << " cells moved), transport-incl. makespan "
               << r.transport_makespan_s << " s";
      } else {
        detail << "routing failed: " << r.routes.failure_reason;
      }
      record(PipelineStage::kRoute, seconds_since(start), detail.str());
    }
    return r;
  };

  // Rounds anneal against differently-weighted links (demand-only in
  // round 0, measured-steps-inflated afterwards), so their cost.value's
  // gamma terms are not comparable; strip the term for cross-round
  // comparison and reporting.
  const double gamma = options_.placer_context.weights.gamma;
  const auto comparable_cost = [gamma](const Round& r) {
    return r.placement.cost.value -
           gamma * static_cast<double>(r.placement.cost.route_pressure);
  };

  // Best round wins: routed plans beat unrouted ones, then the lower
  // transport-inclusive makespan, then the lower (gamma-term-free)
  // placement cost — so the closed loop never hands back something worse
  // than round 0.
  const auto better = [&](const Round& a, const Round& b) {
    if (a.routes.success != b.routes.success) return a.routes.success;
    if (a.transport_makespan_s != b.transport_makespan_s) {
      return a.transport_makespan_s < b.transport_makespan_s;
    }
    return comparable_cost(a) < comparable_cost(b);
  };
  const auto history_of = [&](int round, std::uint64_t round_seed,
                              const Round& r) {
    return FeedbackRoundResult{round, round_seed, r.routes.success,
                               r.transport_makespan_s, comparable_cost(r)};
  };

  // Deadline budget: once the best round routed at or under the caller's
  // deadline, further feedback rounds buy nothing the caller asked for.
  // deadline_s <= 0 never satisfies this, leaving the loop untouched.
  const auto deadline_met = [&](const Round& r) {
    return options_.deadline_s > 0.0 && r.routes.success &&
           r.transport_makespan_s <= options_.deadline_s;
  };

  Round best = run_round(0, seed, round0_links);
  if (closed_loop) {
    result.feedback_history.push_back(history_of(0, seed, best));
    // Round seeds split off the master seed (run_many items already get
    // distinct `seed`s, so batches stay reproducible from one number).
    SplitMix64 round_seeds(seed ^ 0xFEEDBAC4C105EDULL);
    Round previous = best;  // feedback reads the latest round's measurements
    for (int round = 1;
         round <= options_.feedback_rounds && !deadline_met(best); ++round) {
      const std::vector<RouteLink> weighted =
          use_links ? routing::reweight_links(links, previous.routes)
                    : std::vector<RouteLink>{};
      const std::uint64_t round_seed = round_seeds.next();
      Round next = run_round(round, round_seed, weighted);
      result.feedback_history.push_back(history_of(round, round_seed, next));

      // A placement fixed point means further rounds would only re-anneal
      // the same problem; stop early.
      bool converged =
          next.placement.placement.module_count() ==
          previous.placement.placement.module_count();
      for (int i = 0;
           converged && i < next.placement.placement.module_count(); ++i) {
        const auto& a = next.placement.placement.module(i);
        const auto& b = previous.placement.placement.module(i);
        converged = a.anchor == b.anchor && a.rotated == b.rotated;
      }

      if (better(next, best)) {
        best = next;
        result.selected_round = round;
      }
      previous = std::move(next);
      if (converged) break;
    }
  }

  result.placement = std::move(best.placement);
  result.fti = std::move(best.fti);
  result.routes = std::move(best.routes);
  result.transported_schedule = std::move(best.transported);
  result.transport_makespan_s = best.transport_makespan_s;
  const int chip_width = best.chip_width;
  const int chip_height = best.chip_height;

  // Simulate: droplet-level execution on a virtual chip. The event
  // engine is driven directly (not through the Simulator adapter) so its
  // telemetry and stall diagnosis reach the stage observer.
  if (options_.simulate && !options_.fault_plan.faults.empty()) {
    // Online fault recovery: drive the event engine through the
    // OnlineRecoveryEngine so planned faults fire mid-run and detected
    // failures escalate the reconfigure -> reroute -> replace ladder.
    const auto start = Clock::now();
    RecoveryOptions recovery = options_.recovery;
    recovery.sim = options_.simulation;
    if (recovery.replace_context.canvas_width <= 0 &&
        recovery.replace_context.canvas_height <= 0) {
      recovery.replace_context = options_.placer_context;
    }
    recovery.replace_context.seed = seed;
    const OnlineRecoveryEngine engine(recovery);
    OnlineRunResult online =
        engine.run(graph, result.schedule, result.placement.placement,
                   Rect{0, 0, chip_width, chip_height}, options_.fault_plan);
    result.simulation = std::move(online.simulation);
    result.recovery = std::move(online.recovery);
    std::ostringstream detail;
    if (result.simulation.success) {
      detail << "completed in " << result.simulation.makespan_s << " s, "
             << result.simulation.routes_planned << " routes";
    } else {
      detail << "simulation failed: " << result.simulation.failure_reason;
    }
    const RecoveryReport& rep = result.recovery;
    detail << "; recovery: faults=" << rep.faults_injected
           << " cycles=" << rep.recovery_cycles
           << " recovered=" << (rep.recovered ? "yes" : "no")
           << " completed=" << (rep.completed ? "yes" : "no")
           << " time-lost=" << rep.time_lost_s << "s"
           << " resumed-from=" << rep.resumed_from_s << "s";
    if (!rep.detail.empty()) detail << " (" << rep.detail << ")";
    record(PipelineStage::kSimulate, seconds_since(start), detail.str());
  } else if (options_.simulate) {
    const auto start = Clock::now();
    const Chip chip(chip_width, chip_height);
    std::ostringstream detail;
    if (options_.simulation.engine == SimEngineKind::kEvent) {
      EventSimEngine engine(options_.simulation);
      SimEngineRun run =
          engine.run(graph, result.schedule, result.placement.placement, chip);
      result.simulation = std::move(run.result);
      if (result.simulation.success) {
        detail << "completed in " << result.simulation.makespan_s << " s, "
               << result.simulation.routes_planned << " routes";
      } else {
        detail << "simulation failed: " << result.simulation.failure_reason;
        if (run.stall.stalled) detail << " [" << run.stall.chain << "]";
      }
      const SimEngineTelemetry& t = run.telemetry;
      detail << "; events=" << t.events_dispatched
             << " route-avg=" << t.route_cost.average() * 1e6 << "us"
             << " route-max=" << t.route_cost.max * 1e6 << "us"
             << " fast-paths=" << t.manhattan_fast_paths
             << " grid-reuses=" << t.blocked_grid_reuses;
    } else {
      const Simulator simulator(options_.simulation);
      result.simulation = simulator.run(graph, result.schedule,
                                        result.placement.placement, chip);
      if (result.simulation.success) {
        detail << "completed in " << result.simulation.makespan_s << " s, "
               << result.simulation.routes_planned << " routes";
      } else {
        detail << "simulation failed: " << result.simulation.failure_reason;
      }
    }
    record(PipelineStage::kSimulate, seconds_since(start), detail.str());
  }

  return result;
}

std::vector<PipelineResult> SynthesisPipeline::run_indexed(
    std::size_t count,
    const std::function<PipelineResult(std::size_t, std::uint64_t)>& one)
    const {
  std::vector<PipelineResult> results(count);
  if (count == 0) return results;

  const std::vector<std::uint64_t> seeds =
      derive_item_seeds(options_.seed, count);

  const auto errors = detail::for_each_index(
      count, options_.threads,
      [&](std::size_t index) { results[index] = one(index, seeds[index]); });
  // Batch error semantics: a failed item marks its own entry instead of
  // rethrowing and discarding the other items' finished work.
  for (std::size_t index = 0; index < count; ++index) {
    if (!errors[index]) continue;
    results[index] = PipelineResult{};
    results[index].seed = seeds[index];
    results[index].ok = false;
    try {
      std::rethrow_exception(errors[index]);
    } catch (const std::exception& error) {
      results[index].error = error.what();
    } catch (...) {
      results[index].error = "unknown error";
    }
  }
  return results;
}

std::vector<PipelineResult> SynthesisPipeline::run_many(
    std::span<const SequencingGraph> graphs,
    const ModuleLibrary& library) const {
  return run_indexed(graphs.size(), [&](std::size_t index,
                                        std::uint64_t seed) {
    const auto start = Clock::now();
    Binding binding =
        bind_operations(graphs[index], library, options_.binding_policy);
    return run_bound(graphs[index], std::move(binding), options_.scheduler,
                     seconds_since(start), seed);
  });
}

std::vector<PipelineResult> SynthesisPipeline::run_many(
    std::span<const AssayCase> assays) const {
  return run_indexed(assays.size(), [&](std::size_t index,
                                        std::uint64_t seed) {
    const AssayCase& assay = assays[index];
    PipelineResult result = run_bound(assay.graph, assay.binding,
                                      assay.scheduler_options, 0.0, seed);
    if (!assay.name.empty()) result.assay_name = assay.name;
    return result;
  });
}

}  // namespace dmfb
