#include "assay/mixing_tree.h"

#include <stdexcept>

namespace dmfb {
namespace {

ModuleSpec require_spec(const ModuleLibrary& library,
                        const std::string& name) {
  const auto spec = library.find(name);
  if (!spec) {
    throw std::runtime_error("mixing_tree_assay: library is missing '" +
                             name + "'");
  }
  return *spec;
}

/// Reduces k/2^d by stripping factors of two from the numerator.
MixRatio reduced(MixRatio ratio) {
  while (ratio.numerator % 2 == 0 && ratio.depth > 1) {
    ratio.numerator /= 2;
    --ratio.depth;
  }
  return ratio;
}

}  // namespace

bool is_valid_ratio(const MixRatio& ratio) {
  return ratio.depth >= 1 && ratio.depth <= 16 && ratio.numerator > 0 &&
         ratio.numerator < (1 << ratio.depth);
}

int mixing_steps_required(const MixRatio& ratio) {
  return reduced(ratio).depth;
}

AssayCase mixing_tree_assay(const MixRatio& ratio,
                            const ModuleLibrary& library,
                            bool add_detector) {
  if (!is_valid_ratio(ratio)) {
    throw std::invalid_argument(
        "mixing_tree_assay: ratio must satisfy 0 < k < 2^depth, depth in "
        "[1,16]");
  }
  const MixRatio r = reduced(ratio);
  const int k = r.numerator;  // odd after reduction
  const int d = r.depth;

  AssayCase assay;
  assay.name = "mix-ratio-" + std::to_string(ratio.numerator) + "-over-2^" +
               std::to_string(ratio.depth);
  SequencingGraph graph(assay.name);
  const ModuleSpec dilutor = require_spec(library, "dilutor-2x4");

  // Bit-recursive chain: c_d = (b_0 + sum_{i=1..d} b_i 2^{i-1}) / 2^d with
  // b_0 = 1 (k is odd) and b_i = bit (i-1) of (k-1).
  OperationId current = graph.add_operation(OperationType::kDispense,
                                            "D(sample0)", "sample");
  for (int i = 1; i <= d; ++i) {
    const bool with_sample = ((k - 1) >> (i - 1)) & 1;
    const OperationId partner = graph.add_operation(
        OperationType::kDispense,
        std::string("D(") + (with_sample ? "sample" : "buffer") +
            std::to_string(i) + ")",
        with_sample ? "sample" : "buffer");
    const OperationId step = graph.add_operation(
        OperationType::kDilute, "Mix" + std::to_string(i));
    graph.add_dependency(current, step);
    graph.add_dependency(partner, step);
    assay.binding.emplace(step, dilutor);
    current = step;
  }

  if (add_detector) {
    const OperationId detect =
        graph.add_operation(OperationType::kDetect, "Det(target)");
    graph.add_dependency(current, detect);
    assay.binding.emplace(detect, require_spec(library, "detector-1x1"));
    current = detect;
  }
  const OperationId out =
      graph.add_operation(OperationType::kOutput, "Out(target)");
  graph.add_dependency(current, out);

  assay.graph = std::move(graph);
  assay.scheduler_options.constraints.max_concurrent_modules = 2;
  return assay;
}

}  // namespace dmfb
