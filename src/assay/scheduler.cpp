#include "assay/scheduler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dmfb {
namespace {

constexpr double kEps = 1e-9;

double operation_duration(const Operation& op, const Binding& binding,
                          const SchedulerOptions& options) {
  if (is_reconfigurable(op.type)) return binding.at(op.id).duration_s;
  if (op.type == OperationType::kDispense) {
    return options.constraints.dispense_duration_s;
  }
  return 0.0;  // outputs are instantaneous for scheduling purposes
}

/// Critical-path-to-sink priorities in seconds (including own duration).
std::vector<double> compute_priorities(const SequencingGraph& graph,
                                       const Binding& binding,
                                       const SchedulerOptions& options) {
  const auto order = graph.topological_order();
  std::vector<double> priority(graph.operation_count(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const OperationId id = *it;
    double downstream = 0.0;
    for (OperationId succ : graph.successors(id)) {
      downstream = std::max(downstream, priority[succ]);
    }
    priority[id] =
        operation_duration(graph.operation(id), binding, options) + downstream;
  }
  return priority;
}

/// Tracks how many operations of each resource class are running.
class ResourceTracker {
 public:
  ResourceTracker(const ResourceConstraints& limits, const Binding& binding)
      : limits_(limits), binding_(binding) {}

  bool can_start(const Operation& op) const {
    if (op.type == OperationType::kDispense) {
      return active_dispenses_ < limits_.max_concurrent_dispenses;
    }
    if (!is_reconfigurable(op.type)) return true;
    if (active_modules_ >= limits_.max_concurrent_modules) return false;
    const ModuleKind kind = binding_.at(op.id).kind;
    const auto it = limits_.max_concurrent_by_kind.find(kind);
    if (it == limits_.max_concurrent_by_kind.end()) return true;
    const auto active_it = active_by_kind_.find(kind);
    const int active =
        active_it == active_by_kind_.end() ? 0 : active_it->second;
    return active < it->second;
  }

  void occupy(const Operation& op) { adjust(op, +1); }
  void release(const Operation& op) { adjust(op, -1); }

 private:
  void adjust(const Operation& op, int delta) {
    if (op.type == OperationType::kDispense) {
      active_dispenses_ += delta;
    } else if (is_reconfigurable(op.type)) {
      active_modules_ += delta;
      active_by_kind_[binding_.at(op.id).kind] += delta;
    }
  }

  const ResourceConstraints& limits_;
  const Binding& binding_;
  int active_modules_ = 0;
  int active_dispenses_ = 0;
  std::map<ModuleKind, int> active_by_kind_;
};

}  // namespace

Schedule list_schedule(const SequencingGraph& graph, const Binding& binding,
                       const SchedulerOptions& options) {
  const auto problems = validate_binding(graph, binding);
  if (!problems.empty()) {
    throw std::invalid_argument("list_schedule: invalid binding: " +
                                problems.front());
  }
  if (!graph.is_acyclic()) {
    throw std::invalid_argument("list_schedule: graph contains a cycle");
  }

  const auto priority = compute_priorities(graph, binding, options);
  const int n = graph.operation_count();

  std::vector<double> start(n, 0.0);
  std::vector<double> finish(n, 0.0);
  std::vector<int> unfinished_preds(n, 0);
  for (const auto& op : graph.operations()) {
    unfinished_preds[op.id] =
        static_cast<int>(graph.predecessors(op.id).size());
  }

  std::vector<OperationId> ready;
  for (const auto& op : graph.operations()) {
    if (unfinished_preds[op.id] == 0) ready.push_back(op.id);
  }

  struct Running {
    OperationId id;
    double end;
  };
  std::vector<Running> running;
  ResourceTracker resources(options.constraints, binding);

  auto retire_finished = [&](double now) {
    for (std::size_t i = 0; i < running.size();) {
      if (running[i].end <= now + kEps) {
        const OperationId id = running[i].id;
        resources.release(graph.operation(id));
        for (OperationId succ : graph.successors(id)) {
          if (--unfinished_preds[succ] == 0) ready.push_back(succ);
        }
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  };

  double now = 0.0;
  int started_total = 0;
  while (started_total < n) {
    retire_finished(now);

    // Start everything the resources allow, highest critical path first
    // (ties by id for determinism). Restart the scan after each start since
    // zero-length ops retire immediately and may unlock successors.
    bool progressed = true;
    while (progressed) {
      progressed = false;
      std::sort(ready.begin(), ready.end(),
                [&](OperationId a, OperationId b) {
                  if (priority[a] != priority[b])
                    return priority[a] > priority[b];
                  return a < b;
                });
      for (std::size_t i = 0; i < ready.size(); ++i) {
        const OperationId id = ready[i];
        const Operation& op = graph.operation(id);
        if (!resources.can_start(op)) continue;
        const double duration = operation_duration(op, binding, options);
        start[id] = now;
        finish[id] = now + duration;
        resources.occupy(op);
        running.push_back(Running{id, finish[id]});
        ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(i));
        ++started_total;
        progressed = true;
        break;
      }
      if (progressed) retire_finished(now);
    }

    if (started_total >= n) break;

    // Nothing else can start now; advance to the next completion.
    if (running.empty()) {
      throw std::logic_error(
          "list_schedule: deadlock — resource constraints unsatisfiable");
    }
    double next = running.front().end;
    for (const auto& r : running) next = std::min(next, r.end);
    now = std::max(next, now + kEps);
  }

  Schedule schedule;
  for (const auto& op : graph.operations()) {
    if (!is_reconfigurable(op.type)) continue;
    ScheduledModule m;
    m.op_id = op.id;
    m.label = op.label;
    m.spec = binding.at(op.id);
    m.start_s = start[op.id];
    m.end_s = finish[op.id];
    schedule.add(m);
  }

  if (options.insert_storage) {
    // A droplet produced by u and consumed by v after a gap must sit in a
    // storage module meanwhile. Dispense outputs wait in their reservoir,
    // so only reconfigurable producers need storage.
    for (const auto& op : graph.operations()) {
      if (!is_reconfigurable(op.type)) continue;
      for (OperationId succ : graph.successors(op.id)) {
        const Operation& consumer = graph.operation(succ);
        if (!is_reconfigurable(consumer.type)) continue;
        if (start[succ] > finish[op.id] + kEps) {
          ScheduledModule storage;
          storage.op_id = -1;
          storage.label = "S(" + op.label + ")";
          storage.spec = options.storage_spec;
          storage.start_s = finish[op.id];
          storage.end_s = start[succ];
          storage.producer_op = op.id;
          storage.consumer_op = succ;
          schedule.add(storage);
        }
      }
    }
  }

  return schedule;
}

Schedule asap_schedule(const SequencingGraph& graph, const Binding& binding,
                       bool insert_storage) {
  SchedulerOptions options;
  options.insert_storage = insert_storage;
  return list_schedule(graph, binding, options);
}

std::vector<OperationMobility> compute_mobility(const SequencingGraph& graph,
                                                const Binding& binding,
                                                double deadline_s) {
  const auto problems = validate_binding(graph, binding);
  if (!problems.empty()) {
    throw std::invalid_argument("compute_mobility: invalid binding: " +
                                problems.front());
  }
  const SchedulerOptions options;  // durations only; no resource limits
  const auto order = graph.topological_order();

  // ASAP: earliest start given predecessors.
  std::vector<double> asap(graph.operation_count(), 0.0);
  double makespan = 0.0;
  for (const OperationId id : order) {
    for (const OperationId pred : graph.predecessors(id)) {
      const double pred_end =
          asap[pred] + operation_duration(graph.operation(pred), binding,
                                          options);
      asap[id] = std::max(asap[id], pred_end);
    }
    makespan = std::max(
        makespan,
        asap[id] + operation_duration(graph.operation(id), binding, options));
  }

  if (deadline_s < 0.0) deadline_s = makespan;
  if (deadline_s + 1e-9 < makespan) {
    throw std::invalid_argument(
        "compute_mobility: deadline below the ASAP makespan");
  }

  // ALAP: latest start such that every successor can still meet its own
  // latest start and the sinks meet the deadline.
  std::vector<double> alap(graph.operation_count(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const OperationId id = *it;
    const double duration =
        operation_duration(graph.operation(id), binding, options);
    double latest_end = deadline_s;
    for (const OperationId succ : graph.successors(id)) {
      latest_end = std::min(latest_end, alap[succ]);
    }
    alap[id] = latest_end - duration;
  }

  std::vector<OperationMobility> result;
  result.reserve(static_cast<std::size_t>(graph.operation_count()));
  for (const auto& op : graph.operations()) {
    OperationMobility m;
    m.op = op.id;
    m.asap_start_s = asap[op.id];
    m.alap_start_s = alap[op.id];
    m.mobility_s = alap[op.id] - asap[op.id];
    result.push_back(m);
  }
  return result;
}

std::vector<OperationId> critical_path(const SequencingGraph& graph,
                                       const Binding& binding) {
  std::vector<OperationId> critical;
  for (const auto& m : compute_mobility(graph, binding)) {
    if (m.mobility_s <= 1e-9) critical.push_back(m.op);
  }
  return critical;
}

}  // namespace dmfb
