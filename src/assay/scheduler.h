// scheduler.h — resource-constrained list scheduling of a bound sequencing
// graph (the second half of architectural-level synthesis; Fig. 6 of the
// paper is one such schedule).
//
// The paper takes the schedule as a given input to placement; we implement
// the scheduler so the whole flow runs end-to-end. Priorities are critical-
// path lengths (in seconds), the classic list-scheduling heuristic.
#pragma once

#include <limits>
#include <map>
#include <vector>

#include "assay/binder.h"
#include "assay/schedule.h"
#include "assay/sequencing_graph.h"

namespace dmfb {

/// Resource bounds honoured by the list scheduler. On a real DMFB the
/// limits come from dispensing-port count and from how much array area the
/// designer wants active at once; the paper's PCR schedule keeps at most
/// two mixers running concurrently.
struct ResourceConstraints {
  /// Max reconfigurable operations running at once (storage excluded).
  int max_concurrent_modules = std::numeric_limits<int>::max();
  /// Optional per-kind limits (e.g., one optical detector on chip).
  std::map<ModuleKind, int> max_concurrent_by_kind;
  /// Seconds a dispense takes; dispenses consume a port, not array cells.
  double dispense_duration_s = 0.0;
  /// Max concurrent dispense operations (number of ports); unlimited by
  /// default.
  int max_concurrent_dispenses = std::numeric_limits<int>::max();
};

/// Options controlling schedule post-processing.
struct SchedulerOptions {
  ResourceConstraints constraints;
  /// Insert a storage module for every droplet that waits on the array
  /// between its producer finishing and its consumer starting.
  bool insert_storage = true;
  /// Spec used for inserted storage modules.
  ModuleSpec storage_spec{"storage-1x1", ModuleKind::kStorage, 1, 1, 0.0};
};

/// List-schedules `graph` with module types from `binding`.
/// Returns a Schedule containing one ScheduledModule per reconfigurable
/// operation plus (optionally) inserted storage modules labelled "S(<op>)".
/// Throws std::invalid_argument when the binding fails validation.
Schedule list_schedule(const SequencingGraph& graph, const Binding& binding,
                       const SchedulerOptions& options = {});

/// Unconstrained as-soon-as-possible schedule (every op starts the moment
/// its predecessors finish). Used as a lower-bound reference in tests and
/// benches.
Schedule asap_schedule(const SequencingGraph& graph, const Binding& binding,
                       bool insert_storage = true);

/// Per-operation timing slack (classic high-level-synthesis mobility):
/// ASAP start, ALAP start against a deadline, and their difference.
/// Operations with zero mobility form the critical path.
struct OperationMobility {
  OperationId op = -1;
  double asap_start_s = 0.0;
  double alap_start_s = 0.0;
  double mobility_s = 0.0;
};

/// Computes ASAP/ALAP starts for every operation against `deadline_s`
/// (defaults to the ASAP makespan, i.e. zero slack on the critical path).
/// Throws std::invalid_argument when the deadline is below the ASAP
/// makespan or the binding is invalid.
std::vector<OperationMobility> compute_mobility(
    const SequencingGraph& graph, const Binding& binding,
    double deadline_s = -1.0);

/// Operations with (near-)zero mobility — the critical path of the assay.
std::vector<OperationId> critical_path(const SequencingGraph& graph,
                                       const Binding& binding);

}  // namespace dmfb
