#include "assay/sequencing_graph.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace dmfb {

OperationId SequencingGraph::add_operation(OperationType type,
                                           std::string label,
                                           std::string reagent) {
  const OperationId id = static_cast<OperationId>(operations_.size());
  if (label.empty()) {
    label = std::string(to_string(type)) + std::to_string(id);
  }
  operations_.push_back(
      Operation{id, type, std::move(label), std::move(reagent)});
  preds_.emplace_back();
  succs_.emplace_back();
  return id;
}

void SequencingGraph::add_dependency(OperationId from, OperationId to) {
  check_id(from);
  check_id(to);
  if (from == to) {
    throw std::invalid_argument("SequencingGraph: self-dependency");
  }
  auto& out = succs_[from];
  if (std::find(out.begin(), out.end(), to) != out.end()) return;
  out.push_back(to);
  preds_[to].push_back(from);
}

const Operation& SequencingGraph::operation(OperationId id) const {
  check_id(id);
  return operations_[id];
}

const std::vector<OperationId>& SequencingGraph::predecessors(
    OperationId id) const {
  check_id(id);
  return preds_[id];
}

const std::vector<OperationId>& SequencingGraph::successors(
    OperationId id) const {
  check_id(id);
  return succs_[id];
}

std::vector<OperationId> SequencingGraph::sources() const {
  std::vector<OperationId> result;
  for (const auto& op : operations_) {
    if (preds_[op.id].empty()) result.push_back(op.id);
  }
  return result;
}

std::vector<OperationId> SequencingGraph::sinks() const {
  std::vector<OperationId> result;
  for (const auto& op : operations_) {
    if (succs_[op.id].empty()) result.push_back(op.id);
  }
  return result;
}

bool SequencingGraph::is_acyclic() const {
  std::vector<int> in_degree(operations_.size());
  for (const auto& op : operations_) {
    in_degree[op.id] = static_cast<int>(preds_[op.id].size());
  }
  std::queue<OperationId> ready;
  for (const auto& op : operations_) {
    if (in_degree[op.id] == 0) ready.push(op.id);
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const OperationId id = ready.front();
    ready.pop();
    ++visited;
    for (OperationId succ : succs_[id]) {
      if (--in_degree[succ] == 0) ready.push(succ);
    }
  }
  return visited == operations_.size();
}

std::vector<OperationId> SequencingGraph::topological_order() const {
  std::vector<int> in_degree(operations_.size());
  for (const auto& op : operations_) {
    in_degree[op.id] = static_cast<int>(preds_[op.id].size());
  }
  // Min-id-first queue keeps the order deterministic across platforms.
  std::priority_queue<OperationId, std::vector<OperationId>,
                      std::greater<OperationId>>
      ready;
  for (const auto& op : operations_) {
    if (in_degree[op.id] == 0) ready.push(op.id);
  }
  std::vector<OperationId> order;
  order.reserve(operations_.size());
  while (!ready.empty()) {
    const OperationId id = ready.top();
    ready.pop();
    order.push_back(id);
    for (OperationId succ : succs_[id]) {
      if (--in_degree[succ] == 0) ready.push(succ);
    }
  }
  if (order.size() != operations_.size()) {
    throw std::logic_error("SequencingGraph: graph contains a cycle");
  }
  return order;
}

int SequencingGraph::longest_path_length() const {
  const auto order = topological_order();
  std::vector<int> depth(operations_.size(), 0);
  int longest = operations_.empty() ? 0 : 1;
  for (OperationId id : order) {
    depth[id] = 1;
    for (OperationId pred : preds_[id]) {
      depth[id] = std::max(depth[id], depth[pred] + 1);
    }
    longest = std::max(longest, depth[id]);
  }
  return longest;
}

std::vector<OperationId> SequencingGraph::reconfigurable_operations() const {
  std::vector<OperationId> result;
  for (const auto& op : operations_) {
    if (is_reconfigurable(op.type)) result.push_back(op.id);
  }
  return result;
}

void SequencingGraph::check_id(OperationId id) const {
  if (id < 0 || id >= operation_count()) {
    throw std::out_of_range("SequencingGraph: bad operation id");
  }
}

}  // namespace dmfb
