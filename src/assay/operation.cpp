#include "assay/operation.h"

#include <stdexcept>

namespace dmfb {

const char* to_string(OperationType type) {
  switch (type) {
    case OperationType::kDispense:
      return "dispense";
    case OperationType::kMix:
      return "mix";
    case OperationType::kDilute:
      return "dilute";
    case OperationType::kStore:
      return "store";
    case OperationType::kDetect:
      return "detect";
    case OperationType::kOutput:
      return "output";
  }
  return "?";
}

bool is_reconfigurable(OperationType type) {
  switch (type) {
    case OperationType::kMix:
    case OperationType::kDilute:
    case OperationType::kStore:
    case OperationType::kDetect:
      return true;
    case OperationType::kDispense:
    case OperationType::kOutput:
      return false;
  }
  return false;
}

ModuleKind module_kind_for(OperationType type) {
  switch (type) {
    case OperationType::kMix:
      return ModuleKind::kMixer;
    case OperationType::kDilute:
      return ModuleKind::kDilutor;
    case OperationType::kStore:
      return ModuleKind::kStorage;
    case OperationType::kDetect:
      return ModuleKind::kDetector;
    case OperationType::kDispense:
    case OperationType::kOutput:
      break;
  }
  throw std::invalid_argument(
      "module_kind_for: operation type is not reconfigurable");
}

}  // namespace dmfb
