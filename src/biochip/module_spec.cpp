#include "biochip/module_spec.h"

namespace dmfb {

const char* to_string(ModuleKind kind) {
  switch (kind) {
    case ModuleKind::kMixer:
      return "mixer";
    case ModuleKind::kDilutor:
      return "dilutor";
    case ModuleKind::kStorage:
      return "storage";
    case ModuleKind::kDetector:
      return "detector";
  }
  return "?";
}

Rect footprint_rect(const ModuleSpec& spec, Point anchor, bool rotated) {
  const int w = rotated ? spec.footprint_height() : spec.footprint_width();
  const int h = rotated ? spec.footprint_width() : spec.footprint_height();
  return Rect{anchor.x, anchor.y, w, h};
}

}  // namespace dmfb
