// droplet.h — discrete droplets, the unit of fluid in digital microfluidics.
#pragma once

#include <map>
#include <string>

#include "util/geometry.h"

namespace dmfb {

/// Identifier for a droplet within a simulation.
using DropletId = int;

/// A nanoliter-scale droplet sitting on one cell of the array. Contents are
/// tracked as reagent-name -> volume fraction so that mixing operations can
/// be checked for correctness in the simulator.
class Droplet {
 public:
  Droplet() = default;
  Droplet(DropletId id, Point position, std::string reagent,
          double volume_nl = 100.0);

  DropletId id() const { return id_; }
  Point position() const { return position_; }
  void move_to(Point p) { position_ = p; }

  double volume_nl() const { return volume_nl_; }

  /// Volume fraction per reagent; fractions sum to 1 for a non-empty droplet.
  const std::map<std::string, double>& contents() const { return contents_; }
  double fraction_of(const std::string& reagent) const;

  /// Merges `other` into this droplet (volumes add, contents mix
  /// proportionally to volume). This models the first half of a mix
  /// operation: routing two droplets onto the same cell.
  void merge(const Droplet& other);

  /// Splits this droplet into two equal halves; returns the new droplet,
  /// which is placed at `new_position` with id `new_id`. Models a dilutor's
  /// split phase.
  Droplet split(DropletId new_id, Point new_position);

  friend bool operator==(const Droplet&, const Droplet&) = default;

 private:
  DropletId id_ = -1;
  Point position_{};
  double volume_nl_ = 0.0;
  std::map<std::string, double> contents_;
};

}  // namespace dmfb
