// electrode.h — electrowetting actuation model for a single control
// electrode (bottom-plate pad of one cell, Fig. 1(a) of the paper).
//
// The physical behaviour reproduced here is the part the CAD flow depends
// on: an electrode is either actuated (droplet is pulled onto it) or not,
// actuation requires the control voltage to exceed an actuation threshold,
// droplet velocity rises with voltage up to ~20 cm/s at ~90 V, and a faulty
// electrode never actuates regardless of voltage.
#pragma once

namespace dmfb {

/// Default electrode geometry from Table 1 of the paper.
inline constexpr double kDefaultPitchMm = 1.5;        ///< electrode pitch
inline constexpr double kDefaultGapHeightUm = 600.0;  ///< plate gap height

/// Voltage range of the electrowetting driver (0–90 V per §2).
inline constexpr double kMinControlVoltage = 0.0;
inline constexpr double kMaxControlVoltage = 90.0;

/// Minimum voltage at which a droplet reliably moves onto the electrode.
/// Electrowetting force scales with V^2; published Duke devices move
/// droplets dependably in the tens of volts, we use 25 V as the threshold.
inline constexpr double kActuationThresholdVoltage = 25.0;

/// Peak droplet transport velocity at maximum voltage (§2: up to 20 cm/s).
inline constexpr double kMaxDropletVelocityCmPerS = 20.0;

/// One independently controllable electrode.
class Electrode {
 public:
  Electrode() = default;

  /// Sets the applied control voltage, clamped to the legal driver range.
  void set_voltage(double volts);
  double voltage() const { return voltage_; }

  /// Marks the electrode as failed (e.g., dielectric breakdown). A faulty
  /// electrode never actuates; this is what the paper's single-cell fault
  /// model abstracts.
  void set_faulty(bool faulty) { faulty_ = faulty; }
  bool faulty() const { return faulty_; }

  /// True when a droplet adjacent to this electrode would be pulled onto it.
  bool actuated() const {
    return !faulty_ && voltage_ >= kActuationThresholdVoltage;
  }

  /// Droplet transport velocity in cm/s for the current voltage. A simple
  /// quadratic law (force ~ V^2) normalized to hit the published 20 cm/s at
  /// 90 V; zero below the actuation threshold or when faulty.
  double droplet_velocity_cm_per_s() const;

 private:
  double voltage_ = 0.0;
  bool faulty_ = false;
};

}  // namespace dmfb
