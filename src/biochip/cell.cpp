#include "biochip/cell.h"

namespace dmfb {

const char* to_string(CellRole role) {
  switch (role) {
    case CellRole::kFree:
      return "free";
    case CellRole::kFunctional:
      return "functional";
    case CellRole::kSegregation:
      return "segregation";
    case CellRole::kTransport:
      return "transport";
    case CellRole::kReservoir:
      return "reservoir";
  }
  return "?";
}

const char* to_string(CellHealth health) {
  switch (health) {
    case CellHealth::kGood:
      return "good";
    case CellHealth::kFaulty:
      return "faulty";
  }
  return "?";
}

}  // namespace dmfb
