// cell.h — per-cell state of the electrode array.
#pragma once

#include <cstdint>

namespace dmfb {

/// What a cell of the microfluidic array is doing in a given configuration.
/// In a DMFB every cell has the same physical structure (Fig. 1 of the
/// paper); the role is assigned dynamically by the controller.
enum class CellRole : std::uint8_t {
  kFree = 0,         ///< unused; available for reconfiguration / routing
  kFunctional,       ///< inside the functional region of a module
  kSegregation,      ///< segregation ring isolating a module
  kTransport,        ///< reserved for droplet transport this time slice
  kReservoir,        ///< dispensing port / reservoir attachment point
};

/// Health of a cell's electrode. The paper's fault model is a single
/// faulty cell with uniform failure probability across cells (§5.2).
enum class CellHealth : std::uint8_t {
  kGood = 0,
  kFaulty,
};

const char* to_string(CellRole role);
const char* to_string(CellHealth health);

}  // namespace dmfb
