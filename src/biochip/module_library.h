// module_library.h — catalogue of reconfigurable module types.
//
// Mixer latencies come from the droplet-mixer characterization of Paik et
// al. (Lab on a Chip 2003), which is where Table 1 of the paper gets its
// numbers: a 2x2 electrode array mixes in 10 s, a 4-electrode linear array
// in 5 s, a 2x3 array in 6 s and a 2x4 array in 3 s.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "biochip/module_spec.h"

namespace dmfb {

/// Named registry of ModuleSpec entries. Immutable after construction in
/// typical use; the synthesizer binds operations to entries by name.
class ModuleLibrary {
 public:
  /// Empty library.
  ModuleLibrary() = default;

  /// Registers a spec. Returns false (and leaves the library unchanged)
  /// when a spec with the same name already exists.
  bool add(ModuleSpec spec);

  /// Looks a spec up by name.
  std::optional<ModuleSpec> find(const std::string& name) const;

  bool contains(const std::string& name) const;
  std::size_t size() const { return specs_.size(); }
  const std::vector<ModuleSpec>& specs() const { return specs_; }

  /// Specs of a given kind, fastest first. The binder uses this to trade
  /// latency against area.
  std::vector<ModuleSpec> by_kind(ModuleKind kind) const;

  /// The standard library used throughout the paper's evaluation:
  ///  - "mixer-2x2"    : 2x2 electrode array, 4x4-cell footprint, 10 s
  ///  - "mixer-1x4"    : 4-electrode linear array, 3x6-cell footprint, 5 s
  ///  - "mixer-2x3"    : 2x3 electrode array, 4x5-cell footprint, 6 s
  ///  - "mixer-2x4"    : 2x4 electrode array, 4x6-cell footprint, 3 s
  ///  - "storage-1x1"  : single-cell storage, 3x3-cell footprint
  ///  - "detector-1x1" : single-cell optical detector, 3x3-cell footprint
  static ModuleLibrary standard();

 private:
  std::vector<ModuleSpec> specs_;
};

}  // namespace dmfb
