// grid.h — per-time-slice occupancy of the array ("configuration" in the
// paper's sense) plus ASCII rendering of placements for the figure benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "biochip/cell.h"
#include "util/geometry.h"
#include "util/matrix.h"

namespace dmfb {

/// Value stored per cell of an occupancy grid: 0 = free, otherwise the
/// 1-based index of the occupying module within the slice.
using OccupancyGrid = Matrix<std::int16_t>;

/// Builds an occupancy grid of the given dimensions from module footprints
/// (rect per module, clipped to bounds). Later rects overwrite earlier
/// ones; callers that care about overlaps must check separately.
OccupancyGrid build_occupancy(int width, int height,
                              const std::vector<Rect>& footprints);

/// Binary view (1 = occupied) used by the empty-rectangle machinery.
Matrix<std::uint8_t> to_binary(const OccupancyGrid& grid);

/// Marks extra cells (e.g., a faulty cell) as occupied in a binary grid.
void mark_cells(Matrix<std::uint8_t>& grid, const std::vector<Point>& cells);

/// Renders a grid as ASCII art: '.' for free cells, 'A'..'Z' then 'a'..'z'
/// for modules 1..52, '#' beyond that, 'X' overlaid for `faults`.
std::string render_grid(const OccupancyGrid& grid,
                        const std::vector<Point>& faults = {});

}  // namespace dmfb
