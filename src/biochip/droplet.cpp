#include "biochip/droplet.h"

namespace dmfb {

Droplet::Droplet(DropletId id, Point position, std::string reagent,
                 double volume_nl)
    : id_(id), position_(position), volume_nl_(volume_nl) {
  if (!reagent.empty() && volume_nl > 0.0) {
    contents_[std::move(reagent)] = 1.0;
  }
}

double Droplet::fraction_of(const std::string& reagent) const {
  const auto it = contents_.find(reagent);
  return it == contents_.end() ? 0.0 : it->second;
}

void Droplet::merge(const Droplet& other) {
  const double total = volume_nl_ + other.volume_nl_;
  if (total <= 0.0) return;
  std::map<std::string, double> merged;
  for (const auto& [reagent, fraction] : contents_) {
    merged[reagent] += fraction * volume_nl_ / total;
  }
  for (const auto& [reagent, fraction] : other.contents_) {
    merged[reagent] += fraction * other.volume_nl_ / total;
  }
  contents_ = std::move(merged);
  volume_nl_ = total;
}

Droplet Droplet::split(DropletId new_id, Point new_position) {
  volume_nl_ /= 2.0;
  Droplet half;
  half.id_ = new_id;
  half.position_ = new_position;
  half.volume_nl_ = volume_nl_;
  half.contents_ = contents_;
  return half;
}

}  // namespace dmfb
