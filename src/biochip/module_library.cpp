#include "biochip/module_library.h"

#include <algorithm>

namespace dmfb {

bool ModuleLibrary::add(ModuleSpec spec) {
  if (contains(spec.name)) return false;
  specs_.push_back(std::move(spec));
  return true;
}

std::optional<ModuleSpec> ModuleLibrary::find(const std::string& name) const {
  for (const auto& spec : specs_) {
    if (spec.name == name) return spec;
  }
  return std::nullopt;
}

bool ModuleLibrary::contains(const std::string& name) const {
  return find(name).has_value();
}

std::vector<ModuleSpec> ModuleLibrary::by_kind(ModuleKind kind) const {
  std::vector<ModuleSpec> result;
  for (const auto& spec : specs_) {
    if (spec.kind == kind) result.push_back(spec);
  }
  std::sort(result.begin(), result.end(),
            [](const ModuleSpec& a, const ModuleSpec& b) {
              if (a.duration_s != b.duration_s)
                return a.duration_s < b.duration_s;
              return a.footprint_cells() < b.footprint_cells();
            });
  return result;
}

ModuleLibrary ModuleLibrary::standard() {
  ModuleLibrary lib;
  lib.add(ModuleSpec{"mixer-2x2", ModuleKind::kMixer, 2, 2, 10.0});
  lib.add(ModuleSpec{"mixer-1x4", ModuleKind::kMixer, 1, 4, 5.0});
  lib.add(ModuleSpec{"mixer-2x3", ModuleKind::kMixer, 2, 3, 6.0});
  lib.add(ModuleSpec{"mixer-2x4", ModuleKind::kMixer, 2, 4, 3.0});
  lib.add(ModuleSpec{"dilutor-2x4", ModuleKind::kDilutor, 2, 4, 4.0});
  lib.add(ModuleSpec{"storage-1x1", ModuleKind::kStorage, 1, 1, 0.0});
  lib.add(ModuleSpec{"detector-1x1", ModuleKind::kDetector, 1, 1, 30.0});
  return lib;
}

}  // namespace dmfb
