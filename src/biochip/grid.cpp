#include "biochip/grid.h"

#include <sstream>

namespace dmfb {

OccupancyGrid build_occupancy(int width, int height,
                              const std::vector<Rect>& footprints) {
  OccupancyGrid grid(width, height, 0);
  for (std::size_t i = 0; i < footprints.size(); ++i) {
    grid.fill_rect(footprints[i], static_cast<std::int16_t>(i + 1));
  }
  return grid;
}

Matrix<std::uint8_t> to_binary(const OccupancyGrid& grid) {
  Matrix<std::uint8_t> binary(grid.width(), grid.height(), 0);
  for (int y = 0; y < grid.height(); ++y) {
    for (int x = 0; x < grid.width(); ++x) {
      binary.at(x, y) = grid.at(x, y) != 0 ? 1 : 0;
    }
  }
  return binary;
}

void mark_cells(Matrix<std::uint8_t>& grid, const std::vector<Point>& cells) {
  for (const Point& p : cells) {
    if (grid.in_bounds(p)) grid.at(p) = 1;
  }
}

namespace {

char module_glyph(std::int16_t index) {
  if (index <= 0) return '.';
  if (index <= 26) return static_cast<char>('A' + index - 1);
  if (index <= 52) return static_cast<char>('a' + index - 27);
  return '#';
}

}  // namespace

std::string render_grid(const OccupancyGrid& grid,
                        const std::vector<Point>& faults) {
  Matrix<std::uint8_t> fault_mask(grid.width(), grid.height(), 0);
  mark_cells(fault_mask, faults);

  std::ostringstream os;
  // Render top row first so the output matches the paper's y-up convention.
  for (int y = grid.height() - 1; y >= 0; --y) {
    for (int x = 0; x < grid.width(); ++x) {
      os << (fault_mask.at(x, y) != 0 ? 'X' : module_glyph(grid.at(x, y)));
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace dmfb
