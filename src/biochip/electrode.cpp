#include "biochip/electrode.h"

#include <algorithm>

namespace dmfb {

void Electrode::set_voltage(double volts) {
  voltage_ = std::clamp(volts, kMinControlVoltage, kMaxControlVoltage);
}

double Electrode::droplet_velocity_cm_per_s() const {
  if (!actuated()) return 0.0;
  const double ratio = voltage_ / kMaxControlVoltage;
  return kMaxDropletVelocityCmPerS * ratio * ratio;
}

}  // namespace dmfb
