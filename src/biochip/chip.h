// chip.h — the physical electrode array of a digital microfluidic biochip.
//
// Models the bottom-plate electrode matrix (Fig. 1(b) of the paper): an
// m-by-n grid of independently controllable electrodes with a common pitch
// and plate gap. The chip owns electrode health (the fault model) and the
// voltage map that a configuration programs into the microcontroller.
#pragma once

#include <cstdint>
#include <vector>

#include "biochip/cell.h"
#include "biochip/electrode.h"
#include "util/geometry.h"
#include "util/matrix.h"

namespace dmfb {

/// Physical parameters of a fabricated array.
struct ChipGeometry {
  int width_cells = 0;                      ///< columns (n)
  int height_cells = 0;                     ///< rows (m)
  double pitch_mm = kDefaultPitchMm;        ///< electrode pitch
  double gap_height_um = kDefaultGapHeightUm;

  /// Area of one cell in mm^2 (pitch squared).
  double cell_area_mm2() const { return pitch_mm * pitch_mm; }
  /// Total die area of the array in mm^2.
  double total_area_mm2() const {
    return cell_area_mm2() * width_cells * height_cells;
  }
};

/// A fabricated electrode array with per-cell health and voltages.
class Chip {
 public:
  Chip() = default;

  /// Builds a fault-free chip of the given geometry.
  explicit Chip(const ChipGeometry& geometry);

  /// Convenience constructor with the default (paper) pitch and gap.
  Chip(int width_cells, int height_cells);

  const ChipGeometry& geometry() const { return geometry_; }
  int width() const { return geometry_.width_cells; }
  int height() const { return geometry_.height_cells; }
  bool in_bounds(Point p) const { return electrodes_.in_bounds(p); }

  /// Mutable electrode access. Bumps fault_revision() pessimistically —
  /// the caller may flip the electrode's health through the reference, and
  /// consumers caching fault state (e.g. the event simulation engine's
  /// blocked grid) key their caches on the revision.
  Electrode& electrode(Point p) {
    ++fault_revision_;
    return electrodes_.at(p);
  }
  const Electrode& electrode(Point p) const { return electrodes_.at(p); }

  /// Injects / clears a single-cell fault (the paper's §5.2 fault model).
  void set_faulty(Point p, bool faulty = true);
  bool is_faulty(Point p) const { return electrodes_.at(p).faulty(); }
  std::vector<Point> faulty_cells() const;
  int faulty_count() const;

  /// Monotone counter of potential fault mutations: 0 means no mutable
  /// electrode access nor set_faulty() call ever happened, so the chip is
  /// provably fault-free as fabricated. Cache keys, not semantics.
  std::uint64_t fault_revision() const { return fault_revision_; }

  /// Applies `volts` to every electrode in `rect` (clipped to bounds) —
  /// how a module or a transport path is "programmed" onto the array.
  void actuate_rect(const Rect& rect, double volts);

  /// Drops every electrode back to 0 V.
  void deactivate_all();

  /// Count of currently actuated electrodes (voltage above threshold and
  /// not faulty).
  int actuated_count() const;

 private:
  ChipGeometry geometry_;
  Matrix<Electrode> electrodes_;
  std::uint64_t fault_revision_ = 0;
};

}  // namespace dmfb
