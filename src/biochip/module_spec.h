// module_spec.h — reconfigurable virtual devices ("microfluidic modules").
//
// A module is a group of cells temporarily programmed to perform an assay
// operation: mixers of several electrode-array shapes, storage units and
// optical detectors. Per the paper (§6, Table 1), every module carries a
// one-cell-wide *segregation ring* around its functional region, which both
// isolates it from neighbouring droplets and provides a transport path; the
// cell footprint used by placement therefore equals functional size + 2 in
// each dimension.
#pragma once

#include <string>

#include "util/geometry.h"

namespace dmfb {

/// Kinds of reconfigurable module the library knows how to synthesize.
enum class ModuleKind {
  kMixer,    ///< droplets merged and rotated around pivot cells
  kDilutor,  ///< 1:1 mix followed by a split (used by dilution assays)
  kStorage,  ///< holds a droplet between operations
  kDetector, ///< optical detection site (LED + photodiode above one cell)
};

const char* to_string(ModuleKind kind);

/// Width of the segregation region wrapped around the functional region.
inline constexpr int kSegregationRingCells = 1;

/// Static description of one module type, before placement.
struct ModuleSpec {
  std::string name;                ///< e.g. "2x2-array mixer"
  ModuleKind kind = ModuleKind::kMixer;
  int functional_width = 1;        ///< electrodes across the functional region
  int functional_height = 1;       ///< electrodes down the functional region
  double duration_s = 0.0;         ///< operation latency in seconds

  /// Cell footprint including the segregation ring, width-by-height, in the
  /// module's canonical (unrotated) orientation.
  int footprint_width() const {
    return functional_width + 2 * kSegregationRingCells;
  }
  int footprint_height() const {
    return functional_height + 2 * kSegregationRingCells;
  }

  long long footprint_cells() const {
    return static_cast<long long>(footprint_width()) * footprint_height();
  }

  /// True when rotating the footprint by 90 degrees changes nothing.
  bool square() const { return footprint_width() == footprint_height(); }

  friend bool operator==(const ModuleSpec&, const ModuleSpec&) = default;
};

/// Footprint rectangle of `spec` anchored at `anchor`, optionally rotated.
Rect footprint_rect(const ModuleSpec& spec, Point anchor, bool rotated);

}  // namespace dmfb
