#include "biochip/chip.h"

#include <stdexcept>

namespace dmfb {

Chip::Chip(const ChipGeometry& geometry)
    : geometry_(geometry),
      electrodes_(geometry.width_cells, geometry.height_cells) {
  if (geometry.width_cells <= 0 || geometry.height_cells <= 0) {
    throw std::invalid_argument("Chip: dimensions must be positive");
  }
  if (geometry.pitch_mm <= 0.0) {
    throw std::invalid_argument("Chip: pitch must be positive");
  }
}

Chip::Chip(int width_cells, int height_cells)
    : Chip(ChipGeometry{width_cells, height_cells, kDefaultPitchMm,
                        kDefaultGapHeightUm}) {}

void Chip::set_faulty(Point p, bool faulty) {
  ++fault_revision_;
  electrodes_.at(p).set_faulty(faulty);
}

std::vector<Point> Chip::faulty_cells() const {
  std::vector<Point> cells;
  for (int y = 0; y < height(); ++y) {
    for (int x = 0; x < width(); ++x) {
      if (electrodes_.at(x, y).faulty()) cells.push_back(Point{x, y});
    }
  }
  return cells;
}

int Chip::faulty_count() const {
  return static_cast<int>(faulty_cells().size());
}

void Chip::actuate_rect(const Rect& rect, double volts) {
  const Rect clipped = rect.intersection(Rect{0, 0, width(), height()});
  for (int y = clipped.y; y < clipped.top(); ++y) {
    for (int x = clipped.x; x < clipped.right(); ++x) {
      electrodes_.at(x, y).set_voltage(volts);
    }
  }
}

void Chip::deactivate_all() {
  for (int y = 0; y < height(); ++y) {
    for (int x = 0; x < width(); ++x) {
      electrodes_.at(x, y).set_voltage(0.0);
    }
  }
}

int Chip::actuated_count() const {
  int count = 0;
  for (int y = 0; y < height(); ++y) {
    for (int x = 0; x < width(); ++x) {
      if (electrodes_.at(x, y).actuated()) ++count;
    }
  }
  return count;
}

}  // namespace dmfb
