#include "io/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dmfb::json {
namespace {

/// Recursive-descent parser over a string_view; `pos_` is the next unread
/// byte and doubles as the offset reported in errors.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      throw JsonError(pos_, "trailing characters after JSON value");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonError(pos_, message);
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (at_end() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    skip_whitespace();
    if (at_end()) fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value();
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value::Object members;
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return Value(std::move(members));
    }
    while (true) {
      skip_whitespace();
      if (at_end() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (at_end()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(members));
    }
  }

  Value parse_array() {
    expect('[');
    Value::Array items;
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return Value(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_whitespace();
      if (at_end()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(items));
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) fail("truncated escape sequence");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (!consume_literal("\\u")) fail("lone high surrogate");
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          --pos_;
          fail("invalid escape sequence");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end() || peek() < '0' || peek() > '9') fail("invalid number");
    while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') fail("invalid number");
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') fail("invalid number");
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    // The slice above is a valid strtod prefix by construction.
    const std::string slice(text_.substr(start, pos_ - start));
    return Value(std::strtod(slice.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    const unsigned char byte = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (byte < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", byte);
          out += buffer;
        } else {
          out.push_back(c);  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out.push_back('"');
}

void dump_number(double value, std::string& out) {
  if (!std::isfinite(value)) {
    out += "null";  // JSON has no Inf/NaN; null is the conventional stand-in
    return;
  }
  // Integers (the common protocol case: ids, counts) print without a
  // fraction; everything else uses round-trip precision.
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    out += buffer;
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  // Shorten when a lower precision already round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    if (std::strtod(shorter, nullptr) == value) {
      out += shorter;
      return;
    }
  }
  out += buffer;
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) throw JsonError(0, "expected bool");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) throw JsonError(0, "expected number");
  return number_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) throw JsonError(0, "expected string");
  return string_;
}

const Value::Array& Value::as_array() const {
  if (kind_ != Kind::kArray) throw JsonError(0, "expected array");
  return array_;
}

const Value::Object& Value::as_object() const {
  if (kind_ != Kind::kObject) throw JsonError(0, "expected object");
  return object_;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void Value::set(std::string key, Value value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) throw JsonError(0, "set() on non-object");
  object_.emplace_back(std::move(key), std::move(value));
}

Value Value::parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string Value::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

void Value::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      dump_number(number_, out);
      break;
    case Kind::kString:
      dump_string(string_, out);
      break;
    case Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Value& item : array_) {
        if (!first) out.push_back(',');
        first = false;
        item.dump_to(out);
      }
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(key, out);
        out.push_back(':');
        value.dump_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace dmfb::json
