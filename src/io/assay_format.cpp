#include "io/assay_format.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/hash.h"

namespace dmfb {
namespace {

OperationType parse_operation_type(int line, const std::string& word) {
  if (word == "dispense") return OperationType::kDispense;
  if (word == "mix") return OperationType::kMix;
  if (word == "dilute") return OperationType::kDilute;
  if (word == "store") return OperationType::kStore;
  if (word == "detect") return OperationType::kDetect;
  if (word == "output") return OperationType::kOutput;
  throw ParseError(line, "unknown operation type '" + word + "'");
}

/// Splits a line into whitespace-separated tokens, dropping #-comments.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token.front() == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

int parse_int(int line, const std::string& token, const char* what) {
  try {
    std::size_t consumed = 0;
    const int value = std::stoi(token, &consumed);
    if (consumed != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    throw ParseError(line, std::string("bad ") + what + " '" + token + "'");
  }
}

}  // namespace

void write_assay(std::ostream& os, const AssayCase& assay) {
  os << "assay " << (assay.name.empty() ? assay.graph.name() : assay.name)
     << '\n';
  for (const auto& op : assay.graph.operations()) {
    os << "op " << op.id << ' ' << to_string(op.type) << ' ' << op.label;
    if (!op.reagent.empty()) os << ' ' << op.reagent;
    os << '\n';
  }
  for (const auto& op : assay.graph.operations()) {
    for (const OperationId succ : assay.graph.successors(op.id)) {
      os << "dep " << op.id << ' ' << succ << '\n';
    }
  }
  for (const auto& [id, spec] : assay.binding) {
    os << "bind " << id << ' ' << spec.name << '\n';
  }
  const auto& constraints = assay.scheduler_options.constraints;
  if (constraints.max_concurrent_modules !=
      std::numeric_limits<int>::max()) {
    os << "max_concurrent_modules " << constraints.max_concurrent_modules
       << '\n';
  }
  os << "insert_storage "
     << (assay.scheduler_options.insert_storage ? "on" : "off") << '\n';
  os << "end\n";
}

std::string assay_to_string(const AssayCase& assay) {
  std::ostringstream os;
  write_assay(os, assay);
  return os.str();
}

namespace {

/// Deterministic decimal rendering of a double (shortest %.17g form), so
/// canonical texts never depend on locale or stream state.
std::string canonical_double(double value) {
  if (value == 0.0) value = 0.0;  // collapse -0.0
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void append_spec(std::ostream& os, const ModuleSpec& spec) {
  os << spec.name << ' ' << to_string(spec.kind) << ' '
     << spec.functional_width << 'x' << spec.functional_height << ' '
     << canonical_double(spec.duration_s);
}

}  // namespace

std::string canonical_assay_text(const AssayCase& assay) {
  std::ostringstream os;
  os << "canonical-assay-v1\n";
  os << "name " << assay.name << '\n';
  os << "graph " << assay.graph.name() << '\n';

  // Operations are already canonical: ids are dense and the graph stores
  // them in id order.
  for (const auto& op : assay.graph.operations()) {
    os << "op " << op.id << ' ' << to_string(op.type) << ' ' << op.label;
    if (!op.reagent.empty()) os << ' ' << op.reagent;
    os << '\n';
  }

  // Edges sorted (from, to) — successor lists keep insertion order, which
  // is exactly the non-determinism this form must erase.
  std::vector<std::pair<int, int>> deps;
  for (const auto& op : assay.graph.operations()) {
    for (const OperationId succ : assay.graph.successors(op.id)) {
      deps.emplace_back(op.id, succ);
    }
  }
  std::sort(deps.begin(), deps.end());
  for (const auto& [from, to] : deps) {
    os << "dep " << from << ' ' << to << '\n';
  }

  // Binding is a std::map, so iteration is already sorted by operation id;
  // spell out the full spec so library drift changes the fingerprint.
  for (const auto& [id, spec] : assay.binding) {
    os << "bind " << id << ' ';
    append_spec(os, spec);
    os << '\n';
  }

  const SchedulerOptions& sched = assay.scheduler_options;
  const ResourceConstraints& constraints = sched.constraints;
  os << "max_concurrent_modules " << constraints.max_concurrent_modules
     << '\n';
  for (const auto& [kind, limit] : constraints.max_concurrent_by_kind) {
    os << "max_concurrent_kind " << to_string(kind) << ' ' << limit << '\n';
  }
  os << "dispense_duration_s "
     << canonical_double(constraints.dispense_duration_s) << '\n';
  os << "max_concurrent_dispenses " << constraints.max_concurrent_dispenses
     << '\n';
  os << "insert_storage " << (sched.insert_storage ? "on" : "off") << '\n';
  os << "storage_spec ";
  append_spec(os, sched.storage_spec);
  os << '\n';
  os << "end\n";
  return os.str();
}

std::uint64_t assay_fingerprint(const AssayCase& assay) {
  return stable_hash64(canonical_assay_text(assay));
}

AssayCase read_assay(std::istream& is, const ModuleLibrary& library) {
  AssayCase assay;
  struct PendingOp {
    int id;
    OperationType type;
    std::string label;
    std::string reagent;
  };
  std::vector<PendingOp> ops;
  std::vector<std::pair<int, int>> deps;
  std::vector<std::pair<int, std::string>> binds;
  bool saw_assay = false;
  bool saw_end = false;

  std::string line;
  int line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens.front();
    if (keyword == "assay") {
      if (tokens.size() != 2) throw ParseError(line_number, "assay <name>");
      assay.name = tokens[1];
      saw_assay = true;
    } else if (keyword == "op") {
      if (tokens.size() < 4 || tokens.size() > 5) {
        throw ParseError(line_number, "op <id> <type> <label> [reagent]");
      }
      PendingOp op;
      op.id = parse_int(line_number, tokens[1], "operation id");
      op.type = parse_operation_type(line_number, tokens[2]);
      op.label = tokens[3];
      if (tokens.size() == 5) op.reagent = tokens[4];
      ops.push_back(std::move(op));
    } else if (keyword == "dep") {
      if (tokens.size() != 3) throw ParseError(line_number, "dep <from> <to>");
      deps.emplace_back(parse_int(line_number, tokens[1], "edge source"),
                        parse_int(line_number, tokens[2], "edge target"));
    } else if (keyword == "bind") {
      if (tokens.size() != 3) {
        throw ParseError(line_number, "bind <op_id> <module>");
      }
      binds.emplace_back(parse_int(line_number, tokens[1], "operation id"),
                         tokens[2]);
    } else if (keyword == "max_concurrent_modules") {
      if (tokens.size() != 2) {
        throw ParseError(line_number, "max_concurrent_modules <n>");
      }
      assay.scheduler_options.constraints.max_concurrent_modules =
          parse_int(line_number, tokens[1], "limit");
    } else if (keyword == "insert_storage") {
      if (tokens.size() != 2 || (tokens[1] != "on" && tokens[1] != "off")) {
        throw ParseError(line_number, "insert_storage on|off");
      }
      assay.scheduler_options.insert_storage = tokens[1] == "on";
    } else if (keyword == "end") {
      saw_end = true;
      break;
    } else {
      throw ParseError(line_number, "unknown keyword '" + keyword + "'");
    }
  }
  if (!saw_assay) throw ParseError(line_number, "missing 'assay' header");
  if (!saw_end) throw ParseError(line_number, "missing 'end'");

  // Ids must be dense 0..n-1; build the graph in id order.
  std::map<int, PendingOp> by_id;
  for (auto& op : ops) {
    if (!by_id.emplace(op.id, op).second) {
      throw ParseError(0, "duplicate operation id " +
                              std::to_string(op.id));
    }
  }
  SequencingGraph graph(assay.name);
  int expected = 0;
  for (const auto& [id, op] : by_id) {
    if (id != expected++) {
      throw ParseError(0, "operation ids must be dense; missing id " +
                              std::to_string(expected - 1));
    }
    graph.add_operation(op.type, op.label, op.reagent);
  }
  for (const auto& [from, to] : deps) {
    if (from < 0 || from >= graph.operation_count() || to < 0 ||
        to >= graph.operation_count()) {
      throw ParseError(0, "dependency references unknown operation");
    }
    graph.add_dependency(from, to);
  }
  if (!graph.is_acyclic()) throw ParseError(0, "assay graph has a cycle");

  for (const auto& [id, name] : binds) {
    const auto spec = library.find(name);
    if (!spec) {
      throw ParseError(0, "module '" + name + "' not in the library");
    }
    assay.binding.emplace(id, *spec);
  }
  assay.graph = std::move(graph);
  return assay;
}

AssayCase assay_from_string(const std::string& text,
                            const ModuleLibrary& library) {
  std::istringstream is(text);
  return read_assay(is, library);
}

void write_placement(std::ostream& os, const Placement& placement) {
  os << "placement " << placement.canvas_width() << ' '
     << placement.canvas_height() << '\n';
  for (int i = 0; i < placement.module_count(); ++i) {
    const auto& m = placement.module(i);
    os << "place " << i << ' ' << m.anchor.x << ' ' << m.anchor.y << ' '
       << (m.rotated ? 1 : 0) << "  # " << m.label << '\n';
  }
  os << "end\n";
}

std::string placement_to_string(const Placement& placement) {
  std::ostringstream os;
  write_placement(os, placement);
  return os.str();
}

void apply_placement(std::istream& is, Placement& placement) {
  std::string line;
  int line_number = 0;
  bool saw_header = false;
  bool saw_end = false;
  while (std::getline(is, line)) {
    ++line_number;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens.front() == "placement") {
      if (tokens.size() != 3) {
        throw ParseError(line_number, "placement <width> <height>");
      }
      const int w = parse_int(line_number, tokens[1], "canvas width");
      const int h = parse_int(line_number, tokens[2], "canvas height");
      if (w != placement.canvas_width() || h != placement.canvas_height()) {
        throw ParseError(line_number, "canvas mismatch");
      }
      saw_header = true;
    } else if (tokens.front() == "place") {
      if (tokens.size() != 5) {
        throw ParseError(line_number, "place <index> <x> <y> <rotated>");
      }
      const int index = parse_int(line_number, tokens[1], "module index");
      if (index < 0 || index >= placement.module_count()) {
        throw ParseError(line_number, "module index out of range");
      }
      placement.set_anchor(index,
                           Point{parse_int(line_number, tokens[2], "x"),
                                 parse_int(line_number, tokens[3], "y")});
      const int rotated = parse_int(line_number, tokens[4], "rotated flag");
      if (rotated != 0 && rotated != 1) {
        throw ParseError(line_number, "rotated flag must be 0 or 1");
      }
      placement.set_rotated(index, rotated == 1);
    } else if (tokens.front() == "end") {
      saw_end = true;
      break;
    } else {
      throw ParseError(line_number,
                       "unknown keyword '" + tokens.front() + "'");
    }
  }
  if (!saw_header) throw ParseError(line_number, "missing 'placement' header");
  if (!saw_end) throw ParseError(line_number, "missing 'end'");
}

void apply_placement_from_string(const std::string& text,
                                 Placement& placement) {
  std::istringstream is(text);
  apply_placement(is, placement);
}

}  // namespace dmfb
