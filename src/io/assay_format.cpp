#include "io/assay_format.h"

#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

namespace dmfb {
namespace {

OperationType parse_operation_type(int line, const std::string& word) {
  if (word == "dispense") return OperationType::kDispense;
  if (word == "mix") return OperationType::kMix;
  if (word == "dilute") return OperationType::kDilute;
  if (word == "store") return OperationType::kStore;
  if (word == "detect") return OperationType::kDetect;
  if (word == "output") return OperationType::kOutput;
  throw ParseError(line, "unknown operation type '" + word + "'");
}

/// Splits a line into whitespace-separated tokens, dropping #-comments.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token.front() == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

int parse_int(int line, const std::string& token, const char* what) {
  try {
    std::size_t consumed = 0;
    const int value = std::stoi(token, &consumed);
    if (consumed != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    throw ParseError(line, std::string("bad ") + what + " '" + token + "'");
  }
}

}  // namespace

void write_assay(std::ostream& os, const AssayCase& assay) {
  os << "assay " << (assay.name.empty() ? assay.graph.name() : assay.name)
     << '\n';
  for (const auto& op : assay.graph.operations()) {
    os << "op " << op.id << ' ' << to_string(op.type) << ' ' << op.label;
    if (!op.reagent.empty()) os << ' ' << op.reagent;
    os << '\n';
  }
  for (const auto& op : assay.graph.operations()) {
    for (const OperationId succ : assay.graph.successors(op.id)) {
      os << "dep " << op.id << ' ' << succ << '\n';
    }
  }
  for (const auto& [id, spec] : assay.binding) {
    os << "bind " << id << ' ' << spec.name << '\n';
  }
  const auto& constraints = assay.scheduler_options.constraints;
  if (constraints.max_concurrent_modules !=
      std::numeric_limits<int>::max()) {
    os << "max_concurrent_modules " << constraints.max_concurrent_modules
       << '\n';
  }
  os << "insert_storage "
     << (assay.scheduler_options.insert_storage ? "on" : "off") << '\n';
  os << "end\n";
}

std::string assay_to_string(const AssayCase& assay) {
  std::ostringstream os;
  write_assay(os, assay);
  return os.str();
}

AssayCase read_assay(std::istream& is, const ModuleLibrary& library) {
  AssayCase assay;
  struct PendingOp {
    int id;
    OperationType type;
    std::string label;
    std::string reagent;
  };
  std::vector<PendingOp> ops;
  std::vector<std::pair<int, int>> deps;
  std::vector<std::pair<int, std::string>> binds;
  bool saw_assay = false;
  bool saw_end = false;

  std::string line;
  int line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens.front();
    if (keyword == "assay") {
      if (tokens.size() != 2) throw ParseError(line_number, "assay <name>");
      assay.name = tokens[1];
      saw_assay = true;
    } else if (keyword == "op") {
      if (tokens.size() < 4 || tokens.size() > 5) {
        throw ParseError(line_number, "op <id> <type> <label> [reagent]");
      }
      PendingOp op;
      op.id = parse_int(line_number, tokens[1], "operation id");
      op.type = parse_operation_type(line_number, tokens[2]);
      op.label = tokens[3];
      if (tokens.size() == 5) op.reagent = tokens[4];
      ops.push_back(std::move(op));
    } else if (keyword == "dep") {
      if (tokens.size() != 3) throw ParseError(line_number, "dep <from> <to>");
      deps.emplace_back(parse_int(line_number, tokens[1], "edge source"),
                        parse_int(line_number, tokens[2], "edge target"));
    } else if (keyword == "bind") {
      if (tokens.size() != 3) {
        throw ParseError(line_number, "bind <op_id> <module>");
      }
      binds.emplace_back(parse_int(line_number, tokens[1], "operation id"),
                         tokens[2]);
    } else if (keyword == "max_concurrent_modules") {
      if (tokens.size() != 2) {
        throw ParseError(line_number, "max_concurrent_modules <n>");
      }
      assay.scheduler_options.constraints.max_concurrent_modules =
          parse_int(line_number, tokens[1], "limit");
    } else if (keyword == "insert_storage") {
      if (tokens.size() != 2 || (tokens[1] != "on" && tokens[1] != "off")) {
        throw ParseError(line_number, "insert_storage on|off");
      }
      assay.scheduler_options.insert_storage = tokens[1] == "on";
    } else if (keyword == "end") {
      saw_end = true;
      break;
    } else {
      throw ParseError(line_number, "unknown keyword '" + keyword + "'");
    }
  }
  if (!saw_assay) throw ParseError(line_number, "missing 'assay' header");
  if (!saw_end) throw ParseError(line_number, "missing 'end'");

  // Ids must be dense 0..n-1; build the graph in id order.
  std::map<int, PendingOp> by_id;
  for (auto& op : ops) {
    if (!by_id.emplace(op.id, op).second) {
      throw ParseError(0, "duplicate operation id " +
                              std::to_string(op.id));
    }
  }
  SequencingGraph graph(assay.name);
  int expected = 0;
  for (const auto& [id, op] : by_id) {
    if (id != expected++) {
      throw ParseError(0, "operation ids must be dense; missing id " +
                              std::to_string(expected - 1));
    }
    graph.add_operation(op.type, op.label, op.reagent);
  }
  for (const auto& [from, to] : deps) {
    if (from < 0 || from >= graph.operation_count() || to < 0 ||
        to >= graph.operation_count()) {
      throw ParseError(0, "dependency references unknown operation");
    }
    graph.add_dependency(from, to);
  }
  if (!graph.is_acyclic()) throw ParseError(0, "assay graph has a cycle");

  for (const auto& [id, name] : binds) {
    const auto spec = library.find(name);
    if (!spec) {
      throw ParseError(0, "module '" + name + "' not in the library");
    }
    assay.binding.emplace(id, *spec);
  }
  assay.graph = std::move(graph);
  return assay;
}

AssayCase assay_from_string(const std::string& text,
                            const ModuleLibrary& library) {
  std::istringstream is(text);
  return read_assay(is, library);
}

void write_placement(std::ostream& os, const Placement& placement) {
  os << "placement " << placement.canvas_width() << ' '
     << placement.canvas_height() << '\n';
  for (int i = 0; i < placement.module_count(); ++i) {
    const auto& m = placement.module(i);
    os << "place " << i << ' ' << m.anchor.x << ' ' << m.anchor.y << ' '
       << (m.rotated ? 1 : 0) << "  # " << m.label << '\n';
  }
  os << "end\n";
}

std::string placement_to_string(const Placement& placement) {
  std::ostringstream os;
  write_placement(os, placement);
  return os.str();
}

void apply_placement(std::istream& is, Placement& placement) {
  std::string line;
  int line_number = 0;
  bool saw_header = false;
  bool saw_end = false;
  while (std::getline(is, line)) {
    ++line_number;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens.front() == "placement") {
      if (tokens.size() != 3) {
        throw ParseError(line_number, "placement <width> <height>");
      }
      const int w = parse_int(line_number, tokens[1], "canvas width");
      const int h = parse_int(line_number, tokens[2], "canvas height");
      if (w != placement.canvas_width() || h != placement.canvas_height()) {
        throw ParseError(line_number, "canvas mismatch");
      }
      saw_header = true;
    } else if (tokens.front() == "place") {
      if (tokens.size() != 5) {
        throw ParseError(line_number, "place <index> <x> <y> <rotated>");
      }
      const int index = parse_int(line_number, tokens[1], "module index");
      if (index < 0 || index >= placement.module_count()) {
        throw ParseError(line_number, "module index out of range");
      }
      placement.set_anchor(index,
                           Point{parse_int(line_number, tokens[2], "x"),
                                 parse_int(line_number, tokens[3], "y")});
      const int rotated = parse_int(line_number, tokens[4], "rotated flag");
      if (rotated != 0 && rotated != 1) {
        throw ParseError(line_number, "rotated flag must be 0 or 1");
      }
      placement.set_rotated(index, rotated == 1);
    } else if (tokens.front() == "end") {
      saw_end = true;
      break;
    } else {
      throw ParseError(line_number,
                       "unknown keyword '" + tokens.front() + "'");
    }
  }
  if (!saw_header) throw ParseError(line_number, "missing 'placement' header");
  if (!saw_end) throw ParseError(line_number, "missing 'end'");
}

void apply_placement_from_string(const std::string& text,
                                 Placement& placement) {
  std::istringstream is(text);
  apply_placement(is, placement);
}

}  // namespace dmfb
