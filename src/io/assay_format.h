// assay_format.h — a plain-text interchange format for assays, schedules
// and placements, so the flow can be driven from files (see
// examples/assay_compiler.cpp) and results archived.
//
// Assay format (#-comments and blank lines ignored):
//
//   assay pcr-mixing-stage
//   op 0 dispense D1 Tris-HCl      # id type label [reagent]
//   op 8 mix M1
//   dep 0 8                        # edge: droplet of op 0 feeds op 8
//   bind 8 mixer-2x2               # module type from the library
//   max_concurrent_modules 2
//   insert_storage on
//   end
//
// Operation ids must be dense (0..n-1) but may appear in any order.
// Placement format:
//
//   placement 24 24                # canvas width height
//   place 0 3 5 0                  # module-index x y rotated(0/1)
//   end
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "assay/assay_library.h"
#include "biochip/module_library.h"
#include "core/placement.h"

namespace dmfb {

/// Thrown on malformed input, with a 1-based line number in what().
class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Serializes an assay (graph + binding + scheduler options).
void write_assay(std::ostream& os, const AssayCase& assay);
std::string assay_to_string(const AssayCase& assay);

/// Canonical form for content addressing: structurally identical assays
/// produce byte-identical text regardless of the order operations, deps or
/// binds were inserted. Unlike write_assay it spells out every field that
/// influences synthesis — full ModuleSpec details per bind (kind, dims,
/// duration), every ResourceConstraints member including the by-kind map,
/// and the storage spec — so two assays canonicalize equal only when the
/// compiler would treat them identically. Not meant to be parsed back;
/// feed it to stable_hash64 (util/hash.h) or use assay_fingerprint.
std::string canonical_assay_text(const AssayCase& assay);

/// stable_hash64 of canonical_assay_text: the assay half of the synthesis
/// service's compile-cache key. Stable across runs and platforms.
std::uint64_t assay_fingerprint(const AssayCase& assay);

/// Parses an assay; module names in `bind` lines are resolved against
/// `library`. Throws ParseError on malformed input.
AssayCase read_assay(std::istream& is, const ModuleLibrary& library);
AssayCase assay_from_string(const std::string& text,
                            const ModuleLibrary& library);

/// Serializes / parses module locations for an existing placement. The
/// parser applies locations onto `placement` (module count must match).
void write_placement(std::ostream& os, const Placement& placement);
std::string placement_to_string(const Placement& placement);
void apply_placement(std::istream& is, Placement& placement);
void apply_placement_from_string(const std::string& text,
                                 Placement& placement);

}  // namespace dmfb
