// json.h — a minimal JSON value, parser and writer for the synthesis
// service's line protocol (service/server.h).
//
// Scope is deliberately small: one self-contained value type, a strict
// recursive-descent parser (throws JsonError with a byte offset), and a
// compact writer whose output round-trips. Numbers are doubles (ints in
// the protocol stay exact up to 2^53), object member order is preserved,
// and strings handle the standard escapes plus \uXXXX (encoded to UTF-8,
// surrogate pairs included). No streaming, no comments, no trailing
// commas — requests are one JSON object per line.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dmfb::json {

/// Thrown on malformed JSON, with the 0-based byte offset in what().
class JsonError : public std::runtime_error {
 public:
  JsonError(std::size_t offset, const std::string& message)
      : std::runtime_error("json offset " + std::to_string(offset) + ": " +
                           message),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// One JSON value. Intentionally a plain tagged struct, not a template
/// playground: the protocol needs parse, dump, and typed reads.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Value>;
  /// Members in document order (duplicate keys keep the first on reads).
  using Object = std::vector<std::pair<std::string, Value>>;

  Value() = default;  // null
  Value(bool value) : kind_(Kind::kBool), bool_(value) {}
  Value(double value) : kind_(Kind::kNumber), number_(value) {}
  Value(int value) : Value(static_cast<double>(value)) {}
  Value(long long value) : Value(static_cast<double>(value)) {}
  Value(const char* value) : kind_(Kind::kString), string_(value) {}
  Value(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}
  Value(Array value) : kind_(Kind::kArray), array_(std::move(value)) {}
  Value(Object value) : kind_(Kind::kObject), object_(std::move(value)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw JsonError(0) on a kind mismatch so protocol
  /// handlers get one error type for "malformed request".
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// First member named `key`, or nullptr (also for non-objects).
  const Value* find(std::string_view key) const;

  /// Object append (makes this value an object if it was null).
  void set(std::string key, Value value);

  /// Parses exactly one JSON value (surrounding whitespace allowed;
  /// trailing non-space input is an error). Throws JsonError.
  static Value parse(std::string_view text);

  /// Compact serialization (no whitespace); parse(dump()) round-trips.
  std::string dump() const;
  void dump_to(std::string& out) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace dmfb::json
