// compile_cache.h — the content-hashed placement memo at the heart of the
// synthesis service (service/service.h).
//
// A compile is addressed by two stable fingerprints: the canonical assay
// form (io/assay_format.h assay_fingerprint) and the options fingerprint
// below, which covers everything that changes what the compiler produces —
// chip geometry, defect map, placer/router selection, every weight and
// schedule, and the seed. An exact hit returns the stored PipelineResult
// verbatim (bit-identical by construction). A miss on the assay but a hit
// on the layout (same options fingerprint) can still *warm-start*: per
// layout the cache remembers, keyed by schedule structure, the best
// placement seen, plus the cross-request route-pressure ledger
// (reweighted RouteLinks) and the persisted Pathfinder congestion grid —
// so a perturbed assay on a known layout anneals from a near-solution
// instead of cold.
//
// All methods are thread-safe; the congestion grid is handed out as a
// private copy per compile and merged back last-writer-wins, so compiles
// on the same layout never serialize on the grid.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "assay/pipeline.h"

namespace dmfb {

/// Stable fingerprint of every PipelineOptions field that affects compile
/// output. Excluded by design: `observer` and `threads` (execution-only),
/// plus the warm-start seams themselves (`initial_placement`,
/// `warm_links`, `routing.congestion_ledger`) — those carry cached state
/// *into* a run and must not fork the key space of the cache feeding them.
std::uint64_t options_fingerprint(const PipelineOptions& options);

/// Structure signature of a schedule: module count, each module's
/// footprint (dims in index order) and which index pairs overlap in time.
/// Equal signatures mean placements transfer index-by-index — the warm-
/// start compatibility test. Labels and absolute times are excluded, so
/// a perturbed assay with the same shape signature-matches.
std::uint64_t schedule_signature(const Schedule& schedule);

/// Hit/miss counters (monotonic; snapshot via CompileCache::stats()).
struct CacheStats {
  long long exact_hits = 0;
  long long warm_hits = 0;
  long long misses = 0;
  long long entries = 0;  ///< stored exact results
};

class CompileCache {
 public:
  /// What the cache can contribute to one compile.
  struct Lookup {
    /// Exact hit: the stored result; return it, skip the compile.
    std::shared_ptr<const PipelineResult> exact;
    /// Warm start: a structure-compatible placement on this layout.
    std::shared_ptr<const Placement> warm_placement;
    /// The layout's route-pressure ledger (empty when none recorded).
    std::vector<RouteLink> warm_links;
    /// Private copy of the layout's Pathfinder congestion grid (null when
    /// none recorded) — mutate freely, hand back through store().
    std::shared_ptr<std::vector<double>> congestion;
  };

  /// Consults the cache for (assay, options, structure). Bumps exactly
  /// one stats counter: exact_hits, warm_hits (warm_placement set) or
  /// misses.
  Lookup lookup(std::uint64_t assay_fp, std::uint64_t options_fp,
                std::uint64_t signature);

  /// Records a finished compile: the exact entry, the layout's warm
  /// placement for `signature`, the layout ledger rebuilt from the run's
  /// routes (only when routing succeeded), and the (possibly mutated)
  /// congestion grid. Last writer wins throughout.
  void store(std::uint64_t assay_fp, std::uint64_t options_fp,
             std::uint64_t signature,
             std::shared_ptr<const PipelineResult> result,
             std::vector<RouteLink> links,
             std::shared_ptr<std::vector<double>> congestion);

  /// Persists the exact entries to `path` (atomically: temp file +
  /// rename) in a version-stamped text format; doubles are written as
  /// raw bit patterns so every persisted value round-trips exactly.
  ///
  /// What persists is the *response surface* of each result — name,
  /// seed, cost breakdown, FTI counts, makespans, routing totals, round
  /// history and the full placement (specs, intervals, poses) — i.e.
  /// everything a batch result line or wire response renders. Heavy
  /// stage artifacts (schedule, binding, per-changeover routes,
  /// simulation events, stage timings, the FTI coverage matrix) are NOT
  /// persisted: a loaded hit serves summaries bit-identically but
  /// cannot replay artifacts. Layout memos (warm links, congestion
  /// grids) are process-local and rebuilt by fresh compiles. Returns
  /// false on I/O failure.
  bool save(const std::string& path) const;

  /// Merges entries from a save() file into this cache (last writer
  /// wins on duplicate keys) and registers each loaded placement as its
  /// layout's warm placement, so cross-process warm starts work from
  /// disk. A missing, truncated or corrupt file is tolerated as a cold
  /// cache — well-formed leading entries are kept, the rest dropped.
  /// Returns the number of exact entries loaded.
  std::size_t load(const std::string& path);

  CacheStats stats() const;

 private:
  /// Everything remembered about one layout (= one options fingerprint).
  struct Layout {
    /// Best-known placement per schedule structure.
    std::map<std::uint64_t, std::shared_ptr<const Placement>> placements;
    std::vector<RouteLink> links;
    std::shared_ptr<const std::vector<double>> congestion;
  };

  mutable std::mutex mutex_;
  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::shared_ptr<const PipelineResult>>
      exact_;
  std::map<std::uint64_t, Layout> layouts_;
  CacheStats stats_;
};

}  // namespace dmfb
