// batch.h — the multi-process sharded batch-synthesis driver behind
// tools/dmfb_batch.cpp: compile a manifest of assay cases across worker
// *processes* with checkpoint/restart, a crash-safe shared results file
// and a cross-process compile cache.
//
// Where run_many (assay/pipeline.h) shards a batch across threads of
// one process, run_batch shards the same batch across processes — the
// parent re-execs itself with --worker, feeds each child an item-index
// range over its stdin pipe, and every child appends one JSON result
// line per completed item to the shared results file plus one
// checkpoint line to the ledger. Both files are append-only with one
// write(2) per line (util/subprocess.h LineAppender), so a SIGKILL at
// any instant leaves at most one torn trailing line, which resume
// isolates and readers skip. A killed job restarted with --resume
// recomputes nothing that reached the ledger, and because item seeds
// come from the shared batch seed-split (derive_item_seeds) and result
// lines carry only deterministic fields, the resumed results file is
// bit-identical (as a set of lines) to an uninterrupted run's — pinned
// by bench/bench_batch.cpp and tests/test_batch.cpp.
//
// The process topology is deliberately behind two small seams —
// WorkPartitioner (who computes which items) and ResultSink (where
// result/ledger lines go) — so an MPI rank decomposition or a socket
// fan-out can replace fork/exec + local files without touching the
// worker loop.
//
// Manifest: one JSON object per line, the compile server's request
// dialect minus the queueing fields:
//
//   {"id":"case-3","assay":"assay pcr\n...\nend","options":{"placer":"sa"}}
//
// Per-item "options" overlay the batch's base options; the item's seed
// is then always overwritten by its entry in
// derive_item_seeds(base.seed, n) — the master seed governs every item
// seed (that is the batch seed-split contract; a per-item "seed" key is
// accepted but has no effect). Note the wire options surface is
// parse_pipeline_options' (server.h); base-option fields outside it are
// forwarded to workers only if dmfb_batch's own flags cover them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "assay/assay_library.h"
#include "assay/pipeline.h"
#include "biochip/module_library.h"
#include "service/compile_cache.h"

namespace dmfb {

/// One manifest entry, fully resolved: options = base + overlay, seed
/// already replaced by the item's derive_item_seeds entry.
struct BatchItem {
  std::string id;  ///< echoed in the result line; opaque to the driver
  AssayCase assay;
  PipelineOptions options;
};

/// Parses a JSON-line manifest (format above). Throws on malformed
/// manifests — a batch that silently dropped items would be worse than
/// one that failed loudly before spawning anything.
std::vector<BatchItem> read_manifest(std::istream& in,
                                     const PipelineOptions& base,
                                     const ModuleLibrary& library);

/// Content hash of one resolved item: assay_fingerprint x
/// options_fingerprint (which covers the derived item seed). This is
/// the identity the checkpoint ledger records — resume recomputes an
/// item iff its fingerprint is absent, so editing one manifest entry
/// (or changing the master seed) invalidates exactly the items it
/// changed.
std::uint64_t batch_item_fingerprint(const BatchItem& item);

/// One checkpoint ledger line: "<index> <fingerprint>".
struct LedgerEntry {
  std::size_t index = 0;
  std::uint64_t fingerprint = 0;
};

/// Loads a checkpoint ledger, skipping malformed lines (a torn trailing
/// line from a killed run is data loss of at most that one checkpoint,
/// never an error). Missing file = empty ledger.
std::vector<LedgerEntry> load_ledger(const std::string& path);

/// Renders one result line (no trailing newline). Only deterministic
/// fields — no wall times, no cache provenance — so an item's line is
/// byte-identical whether it was computed cold, served from the cache
/// file, or recomputed by a resumed run (64-bit seed/fingerprint are
/// JSON strings: doubles cannot hold them).
std::string render_result_line(const BatchItem& item, std::size_t index,
                               const PipelineResult& result);

/// Splits pending item indices across `shards` workers. The seam an MPI
/// rank decomposition would implement.
class WorkPartitioner {
 public:
  virtual ~WorkPartitioner() = default;
  /// Returns `shards` disjoint index lists covering `pending` exactly.
  virtual std::vector<std::vector<std::size_t>> partition(
      const std::vector<std::size_t>& pending, int shards) const = 0;
};

/// Contiguous near-equal blocks in manifest order — the default. Block
/// (not round-robin) keeps each worker's manifest locality and makes
/// per-worker progress legible in the ledger.
class BlockPartitioner : public WorkPartitioner {
 public:
  std::vector<std::vector<std::size_t>> partition(
      const std::vector<std::size_t>& pending, int shards) const override;
};

/// Where a worker's result and checkpoint lines go. The seam a socket
/// reporter would implement; the ledger append MUST follow the result
/// append (a crash between them recomputes the item — harmless — where
/// the opposite order would resume past a result that was never
/// written).
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void append_result(const std::string& line) = 0;
  virtual void append_ledger(const std::string& line) = 0;
};

/// Appends to the shared results file and ledger via LineAppender — one
/// write(2) per line, safe for concurrent worker processes.
class FileResultSink : public ResultSink {
 public:
  FileResultSink(const std::string& results_path,
                 const std::string& ledger_path);
  ~FileResultSink() override;
  void append_result(const std::string& line) override;
  void append_ledger(const std::string& line) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One worker's tally, also the unit the parent aggregates.
struct WorkerReport {
  std::size_t completed = 0;   ///< items whose result line was appended
  std::size_t failed = 0;      ///< of those, items with ok=false
  std::size_t exact_hits = 0;  ///< served from the cache, not compiled
  /// Summed per-item compile CPU seconds (not wall: CPU time is immune
  /// to the time-slicing inflation of running more workers than cores).
  double busy_s = 0.0;
};

/// The worker loop, process-agnostic: compiles `indices` (in order)
/// from `items`, appending one result + one ledger line per item.
/// `cache` (nullable) serves exact hits and records cold compiles; if
/// `progress` is non-null, emits the worker wire lines
/// ("done <index> <source> <ok01>" per item, "busy <seconds>" at the
/// end) that run_batch parses. Exposed so tests drive it in-process
/// against run_many for the bit-identity pin.
WorkerReport run_batch_items(const std::vector<BatchItem>& items,
                             const std::vector<std::size_t>& indices,
                             ResultSink& sink, CompileCache* cache,
                             std::ostream* progress);

/// Configuration of one `dmfb_batch --worker` child (everything it
/// cannot get from its stdin handshake).
struct BatchWorkerConfig {
  std::string manifest_path;
  std::string results_path;
  std::string ledger_path;
  /// Cache file to serve exact hits from; "" = no cache. The worker
  /// writes its new entries to `<cache_path>.w<shard>` (the parent
  /// merges) — workers never write the shared cache file concurrently.
  std::string cache_path;
  int shard = 0;
  ModuleLibrary library = ModuleLibrary::standard();
};

/// Worker-process entry point: reads the base-options JSON handshake
/// line then item indices (one per line) from `in`, reports on `out`.
/// Returns the process exit code.
int batch_worker_main(const BatchWorkerConfig& config, std::istream& in,
                      std::ostream& out);

struct BatchOptions {
  std::string manifest_path;
  std::string results_path;
  std::string ledger_path;  ///< "" = results_path + ".ledger"
  std::string cache_path;   ///< "" = no cross-process cache
  /// Worker processes (>= 1). 1 still forks one child — the parent
  /// never compiles, so a wedged compile cannot take the driver down.
  int workers = 1;
  /// Resume a killed run: isolate torn trailing lines, then skip every
  /// item whose current fingerprint is already in the ledger. False =
  /// fresh run, results/ledger truncated.
  bool resume = false;
  PipelineOptions base;
  ModuleLibrary library = ModuleLibrary::standard();
  /// Path re-exec'd with --worker (the running binary's own path).
  std::string worker_exe;
  /// Nullable; default BlockPartitioner.
  const WorkPartitioner* partitioner = nullptr;
  /// Per-worker respawn budget: a worker that exits abnormally (crash,
  /// OOM kill, SIGKILL) with items outstanding is re-exec'd with exactly
  /// its unreported items, and the batch carries on. An item the dead
  /// worker completed without reporting recomputes deterministically, so
  /// the results file stays byte-identical as a set of lines. 0 restores
  /// the pre-recovery behavior: any dead worker fails the batch.
  int max_respawns = 2;
  /// Fault-injection hook for tests and bench_recovery: the parent
  /// SIGKILLs the first spawned worker after this many of its "done"
  /// reports, exercising the respawn path on demand. 0 = off.
  int chaos_kill_after = 0;
};

struct BatchSummary {
  std::size_t items = 0;      ///< manifest size
  std::size_t skipped = 0;    ///< already in the ledger (resume)
  std::size_t completed = 0;  ///< computed or cache-served this run
  std::size_t failed = 0;     ///< of those, ok=false result lines
  std::size_t exact_hits = 0;
  int workers = 0;
  double wall_s = 0.0;  ///< parent wall clock
  /// max over workers of summed per-item compile CPU seconds — the
  /// batch's critical path: the elapsed wall of the same run on enough
  /// free cores, and the scaling denominator on machines with fewer
  /// (items/s = completed / critical_path_s).
  double critical_path_s = 0.0;
  /// Abnormal worker exits recovered by re-exec (see
  /// BatchOptions::max_respawns).
  std::size_t respawns = 0;
  /// Every non-skipped item reported done (workers may have died and
  /// been respawned along the way — that alone does not fail the batch,
  /// and neither does a worker killed after its last done report: the
  /// result and ledger lines land before the report).
  bool ok = false;
};

/// The parent driver: reads the manifest, reconciles the ledger when
/// resuming, shards pending items across spawned workers, aggregates
/// their reports and merges their cache shards into `cache_path`.
/// Throws std::runtime_error on driver-level failures (unreadable
/// manifest, spawn failure); worker failures come back as ok=false.
BatchSummary run_batch(const BatchOptions& options);

}  // namespace dmfb
