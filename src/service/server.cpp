#include "service/server.h"

#include <algorithm>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "io/assay_format.h"
#include "io/json.h"
#include "util/parallel.h"
#include "util/request_queue.h"

namespace dmfb {
namespace {

int as_int(const json::Value& value) {
  return static_cast<int>(value.as_number());
}

std::uint64_t as_u64(const json::Value& value) {
  return static_cast<std::uint64_t>(value.as_number());
}

std::pair<int, int> as_dims(const json::Value& value, const char* what) {
  const auto& pair = value.as_array();
  if (pair.size() != 2) {
    throw std::invalid_argument(std::string(what) + " must be [width,height]");
  }
  return {as_int(pair[0]), as_int(pair[1])};
}

void parse_annealing(const json::Value& value, AnnealingSchedule& schedule) {
  for (const auto& [key, field] : value.as_object()) {
    if (key == "T0") {
      schedule.initial_temperature = field.as_number();
    } else if (key == "alpha") {
      schedule.cooling_rate = field.as_number();
    } else if (key == "iterations_per_module") {
      schedule.iterations_per_module = as_int(field);
    } else if (key == "min_temperature") {
      schedule.min_temperature = field.as_number();
    } else {
      throw std::invalid_argument("unknown annealing option \"" + key + "\"");
    }
  }
}

json::Value stats_line(const CacheStats& stats) {
  json::Value counters;
  counters.set("exact_hits", static_cast<double>(stats.exact_hits));
  counters.set("warm_hits", static_cast<double>(stats.warm_hits));
  counters.set("misses", static_cast<double>(stats.misses));
  counters.set("entries", static_cast<double>(stats.entries));
  json::Value doc;
  doc.set("ok", true);
  doc.set("stats", std::move(counters));
  return doc;
}

/// Best-effort id recovery for a line that failed request parsing, so the
/// error response still correlates when the id itself was readable.
std::string recover_id(const std::string& line) {
  try {
    const json::Value doc = json::Value::parse(line);
    if (const json::Value* id = doc.find("id"); id && id->is_string()) {
      return id->as_string();
    }
  } catch (...) {
  }
  return {};
}

}  // namespace

void parse_pipeline_options(const json::Value& value,
                            PipelineOptions& options) {
  for (const auto& [key, field] : value.as_object()) {
    if (key == "seed") {
      options.seed = as_u64(field);
    } else if (key == "placer") {
      options.placer = field.as_string();
    } else if (key == "router") {
      options.router = field.as_string();
    } else if (key == "canvas") {
      const auto [w, h] = as_dims(field, "canvas");
      options.placer_context.canvas_width = w;
      options.placer_context.canvas_height = h;
    } else if (key == "chip") {
      const auto [w, h] = as_dims(field, "chip");
      options.chip_width = w;
      options.chip_height = h;
    } else if (key == "defects") {
      for (const auto& cell : field.as_array()) {
        const auto [x, y] = as_dims(cell, "defect cell");
        options.placer_context.defects.push_back(Point{x, y});
      }
    } else if (key == "gamma") {
      options.placer_context.weights.gamma = field.as_number();
    } else if (key == "beta") {
      options.placer_context.weights.beta = field.as_number();
    } else if (key == "engine") {
      options.placer_context.engine =
          from_string<AnnealingEngine>(field.as_string());
    } else if (key == "annealing") {
      parse_annealing(field, options.placer_context.annealing);
    } else if (key == "feedback_rounds") {
      options.feedback_rounds = as_int(field);
    } else if (key == "deadline_s") {
      options.deadline_s = field.as_number();
    } else if (key == "plan_droplet_routes") {
      options.plan_droplet_routes = field.as_bool();
    } else if (key == "persist_congestion_history") {
      options.routing.persist_congestion_history = field.as_bool();
    } else if (key == "simulate") {
      options.simulate = field.as_bool();
    } else if (key == "fault_plan") {
      // [[t,x,y], ...]: inject a fault at cell (x,y) once the simulated
      // clock reaches t (requires "simulate": true to have any effect).
      for (const auto& fault : field.as_array()) {
        const auto& triple = fault.as_array();
        if (triple.size() != 3) {
          throw std::invalid_argument("fault_plan entries must be [t,x,y]");
        }
        options.fault_plan.faults.push_back(
            PlannedFault{Point{as_int(triple[1]), as_int(triple[2])},
                         triple[0].as_number(), -1});
      }
    } else if (key == "recovery_deadline_s") {
      options.recovery.deadline_s = field.as_number();
    } else if (key == "recovery_max_cycles") {
      options.recovery.max_cycles = as_int(field);
    } else if (key == "evaluate_fault_tolerance") {
      options.evaluate_fault_tolerance = field.as_bool();
    } else if (key == "binding_policy") {
      options.binding_policy = from_string<BindingPolicy>(field.as_string());
    } else {
      throw std::invalid_argument("unknown option \"" + key + "\"");
    }
  }
}

json::Value pipeline_options_to_json(const PipelineOptions& options) {
  json::Value doc;
  doc.set("seed", static_cast<double>(options.seed));
  doc.set("placer", options.placer);
  doc.set("router", options.router);
  const auto dims = [](int w, int h) {
    return json::Value(json::Value::Array{json::Value(w), json::Value(h)});
  };
  doc.set("canvas", dims(options.placer_context.canvas_width,
                         options.placer_context.canvas_height));
  doc.set("chip", dims(options.chip_width, options.chip_height));
  {
    json::Value::Array defects;
    for (const Point& p : options.placer_context.defects) {
      defects.push_back(dims(p.x, p.y));
    }
    doc.set("defects", json::Value(std::move(defects)));
  }
  doc.set("gamma", options.placer_context.weights.gamma);
  doc.set("beta", options.placer_context.weights.beta);
  doc.set("engine", to_string(options.placer_context.engine));
  {
    const AnnealingSchedule& s = options.placer_context.annealing;
    json::Value annealing;
    annealing.set("T0", s.initial_temperature);
    annealing.set("alpha", s.cooling_rate);
    annealing.set("iterations_per_module",
                  static_cast<double>(s.iterations_per_module));
    annealing.set("min_temperature", s.min_temperature);
    doc.set("annealing", std::move(annealing));
  }
  doc.set("feedback_rounds", static_cast<double>(options.feedback_rounds));
  doc.set("deadline_s", options.deadline_s);
  doc.set("plan_droplet_routes", options.plan_droplet_routes);
  doc.set("persist_congestion_history",
          options.routing.persist_congestion_history);
  doc.set("simulate", options.simulate);
  {
    json::Value::Array faults;
    for (const PlannedFault& fault : options.fault_plan.faults) {
      json::Value::Array triple;
      triple.push_back(json::Value(fault.time_s));
      triple.push_back(json::Value(fault.cell.x));
      triple.push_back(json::Value(fault.cell.y));
      faults.push_back(json::Value(std::move(triple)));
    }
    doc.set("fault_plan", json::Value(std::move(faults)));
  }
  doc.set("recovery_deadline_s", options.recovery.deadline_s);
  doc.set("recovery_max_cycles",
          static_cast<double>(options.recovery.max_cycles));
  doc.set("evaluate_fault_tolerance", options.evaluate_fault_tolerance);
  doc.set("binding_policy", to_string(options.binding_policy));
  return doc;
}

CompileServer::CompileServer(ServerOptions options)
    : options_(std::move(options)), service_(options_.service) {}

CompileRequest CompileServer::parse_request(const std::string& line) const {
  const json::Value doc = json::Value::parse(line);
  CompileRequest request;
  if (const json::Value* id = doc.find("id")) request.id = id->as_string();
  const json::Value* assay = doc.find("assay");
  if (!assay) throw std::invalid_argument("request missing \"assay\"");
  request.assay =
      assay_from_string(assay->as_string(), options_.service.library);
  if (const json::Value* cache = doc.find("cache")) {
    request.use_cache = cache->as_bool();
  }
  if (const json::Value* opts = doc.find("options")) {
    parse_pipeline_options(*opts, request.options);
  }
  return request;
}

std::string CompileServer::render_response(const CompileResponse& response) {
  json::Value doc;
  doc.set("id", response.id);
  doc.set("ok", response.ok);
  if (!response.ok) {
    doc.set("error", response.error);
    return doc.dump();
  }
  doc.set("source", to_string(response.source));
  doc.set("wall_s", response.wall_seconds);

  const PipelineResult& r = *response.result;
  json::Value result;
  result.set("assay", r.assay_name);
  result.set("seed", static_cast<double>(r.seed));
  result.set("area_cells",
             static_cast<double>(r.placement.cost.area_cells));
  result.set("cost", r.placement.cost.value);
  result.set("fti", r.fti.fti());
  result.set("makespan_s", r.schedule.makespan_s());
  result.set("transport_makespan_s", r.transport_makespan_s);
  result.set("routed", r.routes.success);
  result.set("rounds", static_cast<double>(r.feedback_history.size()));
  result.set("selected_round", static_cast<double>(r.selected_round));
  if (r.placement.placement.module_count() > 0) {
    result.set("placement", placement_to_string(r.placement.placement));
  }
  // Online fault-recovery telemetry (present iff the request planned
  // faults — the engine always stamps a detail line when it runs).
  if (!r.recovery.detail.empty()) {
    json::Value recovery;
    recovery.set("faults", static_cast<double>(r.recovery.faults_injected));
    recovery.set("cycles", static_cast<double>(r.recovery.recovery_cycles));
    recovery.set("recovered", r.recovery.recovered);
    recovery.set("completed", r.recovery.completed);
    recovery.set("time_lost_s", r.recovery.time_lost_s);
    recovery.set("resumed_from_s", r.recovery.resumed_from_s);
    recovery.set("detail", r.recovery.detail);
    json::Value::Array attempts;
    for (const RecoveryAttempt& attempt : r.recovery.attempts) {
      json::Value a;
      a.set("action", to_string(attempt.action));
      a.set("cycle", static_cast<double>(attempt.cycle));
      a.set("success", attempt.success);
      attempts.push_back(std::move(a));
    }
    recovery.set("attempts", json::Value(std::move(attempts)));
    result.set("recovery", std::move(recovery));
  }
  doc.set("result", std::move(result));
  return doc.dump();
}

void CompileServer::serve(
    const std::function<bool(std::string&)>& read_line,
    const std::function<void(const std::string&)>& write_line) {
  std::mutex write_mutex;
  const auto emit = [&](const std::string& line) {
    std::lock_guard lock(write_mutex);
    write_line(line);
  };

  detail::BoundedQueue<std::string> queue(
      std::max<std::size_t>(1, options_.queue_capacity));
  // Same 0-means-hardware-concurrency convention as run_many; the
  // "count" bound does not apply to an open-ended request stream.
  const std::size_t worker_count = detail::resolve_worker_count(
      std::numeric_limits<std::size_t>::max(), options_.workers);

  const auto worker = [&] {
    std::string line;
    while (queue.pop(line)) {
      CompileResponse response;
      try {
        response = service_.compile(parse_request(line));
      } catch (const std::exception& error) {
        response.id = recover_id(line);
        response.ok = false;
        response.error = error.what();
      }
      emit(render_response(response));
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) pool.emplace_back(worker);

  std::string line;
  while (read_line(line)) {
    if (line.find_first_not_of(" \t\r\n") == std::string::npos) continue;
    // Control lines ({"cmd":...}) bypass the queue; the substring test is
    // only a cheap pre-filter — the parse decides.
    if (line.find("\"cmd\"") != std::string::npos) {
      std::string cmd;
      try {
        const json::Value doc = json::Value::parse(line);
        if (const json::Value* field = doc.find("cmd")) {
          cmd = field->as_string();
        }
      } catch (...) {
        // Malformed line: fall through to the queue, a worker reports it.
      }
      if (cmd == "stats") {
        emit(stats_line(service_.cache_stats()).dump());
        continue;
      }
      if (cmd == "shutdown") break;
      if (!cmd.empty()) {
        json::Value doc;
        doc.set("ok", false);
        doc.set("error", "unknown command \"" + cmd + "\"");
        emit(doc.dump());
        continue;
      }
    }
    queue.push(line);
  }

  queue.close();
  for (auto& thread : pool) thread.join();
}

}  // namespace dmfb
