// service.h — CompileService: one synthesis compile with the cache in the
// loop (synthesis-as-a-service, minus the wire protocol, which lives in
// service/server.h so tests and benches can drive the service in-process).
//
// Per request the service:
//   1. fingerprints the assay (canonical form) and the options;
//   2. returns the stored result verbatim on an exact hit — bit-identical
//      to the original compile by construction;
//   3. otherwise schedules the assay, and when the layout has a
//      structure-compatible cached placement, *warm-starts*: the pipeline
//      anneals from the cached poses under a short refinement schedule
//      instead of the full cold anneal, with the layout's route-pressure
//      ledger and persisted Pathfinder congestion grid injected.
//      Because the annealers never record a state worse than a feasible
//      initial, a warm-started compile's placement cost is never worse
//      than the cached placement it started from;
//   4. compiles cold otherwise, and in every non-hit case stores the
//      result, the layout's warm placement, the reweighted RouteLink
//      ledger and the congestion grid back into the cache.
//
// compile() is reentrant; the server (service/server.h) calls it from a
// worker pool.
#pragma once

#include <memory>
#include <string>

#include "assay/pipeline.h"
#include "service/compile_cache.h"

namespace dmfb {

/// Where a response came from (also spelled into the wire protocol).
enum class CompileSource {
  kMiss,      ///< full cold compile
  kExactHit,  ///< cache returned the stored result, no compile ran
  kWarmStart, ///< compiled, annealing seeded from a cached placement
};

const char* to_string(CompileSource source);

/// One request: an assay plus the compile options. `options.seed` is the
/// request's reproducibility handle exactly as in SynthesisPipeline.
struct CompileRequest {
  std::string id;  ///< echoed in the response; opaque to the service
  AssayCase assay;
  PipelineOptions options;
  bool use_cache = true;  ///< false = always compile cold, store nothing
};

struct CompileResponse {
  std::string id;
  bool ok = false;
  std::string error;  ///< set iff !ok
  CompileSource source = CompileSource::kMiss;
  /// Shared with the cache on hits — do not mutate.
  std::shared_ptr<const PipelineResult> result;
  double wall_seconds = 0.0;  ///< service-side time for this request
};

/// Service-level tuning.
struct ServiceOptions {
  /// Refinement annealing schedule for warm-started compiles: the cached
  /// placement is near-solved, so the full cold schedule (T0=1e4, Na=400)
  /// would waste almost all its proposals re-exploring. ~8x fewer
  /// proposals than the paper defaults. Clamped per request against the
  /// request's own schedule (no hotter, no slower-cooling, at most a
  /// quarter of its proposal density), so the warm path stays the cheap
  /// one even for requests that already anneal briefly.
  AnnealingSchedule warm_annealing{/*initial_temperature=*/25.0,
                                   /*cooling_rate=*/0.9,
                                   /*iterations_per_module=*/100,
                                   /*min_temperature=*/0.05};
  /// Library used to auto-bind requests that arrive unbound.
  ModuleLibrary library = ModuleLibrary::standard();
};

class CompileService {
 public:
  explicit CompileService(ServiceOptions options = {});

  /// Compiles one request (or serves it from the cache). Never throws:
  /// compile errors come back as !ok responses with the exception text.
  CompileResponse compile(const CompileRequest& request);

  CacheStats cache_stats() const { return cache_.stats(); }
  const ServiceOptions& options() const { return options_; }

 private:
  ServiceOptions options_;
  CompileCache cache_;
};

}  // namespace dmfb
