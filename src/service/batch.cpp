#include "service/batch.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "io/assay_format.h"
#include "io/json.h"
#include "service/server.h"
#include "util/hash.h"
#include "util/subprocess.h"

namespace dmfb {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// CPU seconds consumed by this process — the batch's busy metric.
/// Wall time would credit a worker for time slices it spent descheduled
/// behind its siblings, inflating every worker's busy to roughly the
/// whole batch on machines with fewer cores than workers; CPU time
/// charges each item what it actually cost, so critical-path throughput
/// (completed / max worker busy) measures the sharding itself on any
/// machine.
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

std::runtime_error manifest_error(std::size_t line_number,
                                  const std::string& what) {
  return std::runtime_error("manifest line " + std::to_string(line_number) +
                            ": " + what);
}

}  // namespace

std::vector<BatchItem> read_manifest(std::istream& in,
                                     const PipelineOptions& base,
                                     const ModuleLibrary& library) {
  std::vector<BatchItem> items;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r\n") == std::string::npos) continue;
    BatchItem item;
    item.options = base;
    try {
      const json::Value doc = json::Value::parse(line);
      if (const json::Value* id = doc.find("id")) item.id = id->as_string();
      const json::Value* assay = doc.find("assay");
      if (!assay) throw std::invalid_argument("missing \"assay\"");
      item.assay = assay_from_string(assay->as_string(), library);
      if (const json::Value* opts = doc.find("options")) {
        parse_pipeline_options(*opts, item.options);
      }
    } catch (const std::exception& error) {
      throw manifest_error(line_number, error.what());
    }
    items.push_back(std::move(item));
  }
  // The batch seed-split: item i anneals with seed i of the master
  // walk no matter which process picks it up, and no matter what a
  // per-item overlay said — run_many derives the very same seeds.
  const std::vector<std::uint64_t> seeds =
      derive_item_seeds(base.seed, items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i].options.seed = seeds[i];
  }
  return items;
}

std::uint64_t batch_item_fingerprint(const BatchItem& item) {
  HashStream h(/*seed=*/0xBA7C400000001ULL);  // versioned domain tag
  h.mix(assay_fingerprint(item.assay));
  h.mix(options_fingerprint(item.options));
  return h.value();
}

std::vector<LedgerEntry> load_ledger(const std::string& path) {
  std::vector<LedgerEntry> entries;
  for (const std::string& line : read_lines(path)) {
    std::istringstream ls(line);
    LedgerEntry entry;
    if (ls >> entry.index >> entry.fingerprint) {
      entries.push_back(entry);
    }
    // else: torn or garbage line — at most one checkpoint lost, the
    // item just recomputes (deterministically) on resume.
  }
  return entries;
}

std::string render_result_line(const BatchItem& item, std::size_t index,
                               const PipelineResult& result) {
  json::Value doc;
  doc.set("id", item.id);
  doc.set("index", static_cast<double>(index));
  doc.set("assay", item.assay.name);
  doc.set("seed", std::to_string(result.seed));
  doc.set("fingerprint", std::to_string(batch_item_fingerprint(item)));
  doc.set("ok", result.ok);
  if (!result.ok) {
    doc.set("error", result.error);
    return doc.dump();
  }
  doc.set("area_cells", static_cast<double>(result.placement.cost.area_cells));
  doc.set("cost", result.placement.cost.value);
  doc.set("fti", result.fti.fti());
  doc.set("makespan_s", result.makespan_s);
  doc.set("transport_makespan_s", result.transport_makespan_s);
  doc.set("routed", result.routes.success);
  doc.set("rounds", static_cast<double>(result.feedback_history.size()));
  doc.set("selected_round", static_cast<double>(result.selected_round));
  if (result.placement.placement.module_count() > 0) {
    doc.set("placement", placement_to_string(result.placement.placement));
  }
  // Online fault-recovery telemetry (multi-fault campaigns run as batch
  // items with a fault_plan in their options overlay). Deterministic
  // fields only, so re-computed lines stay byte-identical.
  if (!result.recovery.detail.empty()) {
    doc.set("recovery_faults",
            static_cast<double>(result.recovery.faults_injected));
    doc.set("recovery_cycles",
            static_cast<double>(result.recovery.recovery_cycles));
    doc.set("recovery_recovered", result.recovery.recovered);
    doc.set("recovery_completed", result.recovery.completed);
    doc.set("recovery_time_lost_s", result.recovery.time_lost_s);
  }
  return doc.dump();
}

std::vector<std::vector<std::size_t>> BlockPartitioner::partition(
    const std::vector<std::size_t>& pending, int shards) const {
  const std::size_t shard_count =
      static_cast<std::size_t>(std::max(1, shards));
  std::vector<std::vector<std::size_t>> result(shard_count);
  const std::size_t base = pending.size() / shard_count;
  const std::size_t remainder = pending.size() % shard_count;
  std::size_t position = 0;
  for (std::size_t k = 0; k < shard_count; ++k) {
    const std::size_t take = base + (k < remainder ? 1 : 0);
    result[k].assign(pending.begin() + position,
                     pending.begin() + position + take);
    position += take;
  }
  return result;
}

struct FileResultSink::Impl {
  // The ledger is fsync'd per line: a checkpoint acknowledged to the
  // parent must survive a machine crash, or resume could skip an item
  // whose result line was itself lost. One short line per completed
  // compile keeps the cost negligible; the bulk results file stays on
  // the page cache (a lost result line just recomputes).
  Impl(const std::string& results_path, const std::string& ledger_path)
      : results(results_path), ledger(ledger_path, /*fsync_each_line=*/true) {}
  LineAppender results;
  LineAppender ledger;
};

FileResultSink::FileResultSink(const std::string& results_path,
                               const std::string& ledger_path)
    : impl_(std::make_unique<Impl>(results_path, ledger_path)) {}

FileResultSink::~FileResultSink() = default;

void FileResultSink::append_result(const std::string& line) {
  impl_->results.append(line);
}

void FileResultSink::append_ledger(const std::string& line) {
  impl_->ledger.append(line);
}

WorkerReport run_batch_items(const std::vector<BatchItem>& items,
                             const std::vector<std::size_t>& indices,
                             ResultSink& sink, CompileCache* cache,
                             std::ostream* progress) {
  WorkerReport report;
  for (const std::size_t index : indices) {
    const BatchItem& item = items.at(index);
    const double start = cpu_seconds();
    const std::uint64_t assay_fp = assay_fingerprint(item.assay);
    const std::uint64_t options_fp = options_fingerprint(item.options);

    std::shared_ptr<const PipelineResult> result;
    bool exact = false;
    if (cache) {
      // Exact hits only: a warm-started anneal would converge somewhere
      // other than run_many's cold run, and batch results are pinned
      // bit-identical to run_many's.
      result = cache->lookup(assay_fp, options_fp, /*signature=*/0).exact;
      exact = result != nullptr;
    }
    if (!result) {
      auto computed = std::make_shared<PipelineResult>();
      try {
        *computed = SynthesisPipeline(item.options).run(item.assay);
      } catch (const std::exception& error) {
        *computed = PipelineResult{};
        computed->seed = item.options.seed;
        computed->ok = false;
        computed->error = error.what();
      } catch (...) {
        *computed = PipelineResult{};
        computed->seed = item.options.seed;
        computed->ok = false;
        computed->error = "unknown error";
      }
      if (cache && computed->ok) {
        cache->store(assay_fp, options_fp,
                     schedule_signature(computed->schedule), computed,
                     /*links=*/{}, /*congestion=*/nullptr);
      }
      result = std::move(computed);
    }

    // Result line first, checkpoint second: a crash between the two
    // recomputes the item (deterministically, so the duplicate line is
    // byte-identical); the opposite order could checkpoint an item
    // whose result never hit the file.
    sink.append_result(render_result_line(item, index, *result));
    sink.append_ledger(std::to_string(index) + ' ' +
                       std::to_string(batch_item_fingerprint(item)));
    report.busy_s += cpu_seconds() - start;
    ++report.completed;
    if (!result->ok) ++report.failed;
    if (exact) ++report.exact_hits;
    if (progress) {
      *progress << "done " << index << ' ' << (exact ? "exact" : "cold")
                << ' ' << (result->ok ? 1 : 0) << std::endl;
    }
  }
  if (progress) *progress << "busy " << report.busy_s << std::endl;
  return report;
}

int batch_worker_main(const BatchWorkerConfig& config, std::istream& in,
                      std::ostream& out) {
  std::string line;
  if (!std::getline(in, line)) return 2;  // no options handshake
  PipelineOptions base;
  try {
    parse_pipeline_options(json::Value::parse(line), base);
  } catch (const std::exception&) {
    return 2;
  }

  std::ifstream manifest(config.manifest_path);
  if (!manifest) return 2;
  std::vector<BatchItem> items;
  try {
    items = read_manifest(manifest, base, config.library);
  } catch (const std::exception&) {
    return 2;
  }

  std::vector<std::size_t> indices;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::size_t index = 0;
    std::istringstream ls(line);
    if (!(ls >> index) || index >= items.size()) return 2;
    indices.push_back(index);
  }

  CompileCache cache;
  const bool use_cache = !config.cache_path.empty();
  if (use_cache) cache.load(config.cache_path);

  FileResultSink sink(config.results_path, config.ledger_path);
  run_batch_items(items, indices, sink, use_cache ? &cache : nullptr, &out);

  if (use_cache) {
    // Private shard file; the parent merges shards after every worker
    // exited, so the shared cache file is never written concurrently.
    cache.save(config.cache_path + ".w" + std::to_string(config.shard));
  }
  return 0;
}

BatchSummary run_batch(const BatchOptions& options) {
  const auto start = Clock::now();
  BatchSummary summary;
  const std::string ledger_path = options.ledger_path.empty()
                                      ? options.results_path + ".ledger"
                                      : options.ledger_path;

  std::ifstream manifest(options.manifest_path);
  if (!manifest) {
    throw std::runtime_error("cannot read manifest " + options.manifest_path);
  }
  const std::vector<BatchItem> items =
      read_manifest(manifest, options.base, options.library);
  summary.items = items.size();

  std::vector<std::uint64_t> fingerprints(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    fingerprints[i] = batch_item_fingerprint(items[i]);
  }

  std::vector<char> done(items.size(), 0);
  if (options.resume) {
    // Isolate any torn trailing line *before* a worker appends to the
    // files, then trust only checkpoints that match the items the
    // manifest holds right now.
    terminate_torn_tail(options.results_path);
    terminate_torn_tail(ledger_path);
    for (const LedgerEntry& entry : load_ledger(ledger_path)) {
      if (entry.index < items.size() &&
          fingerprints[entry.index] == entry.fingerprint) {
        done[entry.index] = 1;
      }
    }
  } else {
    std::ofstream(options.results_path, std::ios::trunc);
    std::ofstream(ledger_path, std::ios::trunc);
  }

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!done[i]) pending.push_back(i);
  }
  summary.skipped = items.size() - pending.size();

  const int workers = std::max(1, options.workers);
  summary.workers = workers;
  const BlockPartitioner default_partitioner;
  const WorkPartitioner& partitioner =
      options.partitioner ? *options.partitioner : default_partitioner;
  const auto shards = partitioner.partition(pending, workers);

  if (options.worker_exe.empty()) {
    throw std::runtime_error("run_batch: worker_exe not set");
  }
  const std::string options_json =
      pipeline_options_to_json(options.base).dump();

  // A worker killed between reading its handshake and its first item
  // leaves the write side of its stdin pipe broken; with SIGPIPE at the
  // default disposition the *parent* would die feeding the next line.
  // Ignore it process-wide — every write error still surfaces as EPIPE,
  // which spawn_shard tolerates (the wait() below sees the dead child).
  ::signal(SIGPIPE, SIG_IGN);

  const auto spawn_shard = [&](std::size_t k,
                               const std::vector<std::size_t>& indices) {
    std::vector<std::string> argv = {
        options.worker_exe, "--worker",
        "--manifest",       options.manifest_path,
        "--results",        options.results_path,
        "--ledger",         ledger_path,
        "--shard",          std::to_string(k)};
    if (!options.cache_path.empty()) {
      argv.push_back("--cache");
      argv.push_back(options.cache_path);
    }
    Subprocess process = Subprocess::spawn(argv);
    try {
      process.write_line(options_json);
      for (const std::size_t index : indices) {
        process.write_line(std::to_string(index));
      }
      process.close_stdin();
    } catch (const std::runtime_error&) {
      // Child already dead (EPIPE): wait() reports the abnormal exit and
      // the respawn path below requeues every index.
    }
    return process;
  };

  struct ShardState {
    Subprocess process;
    std::vector<std::size_t> remaining;  ///< not yet reported "done"
    std::size_t shard;
  };
  std::vector<ShardState> children;
  std::vector<int> spawned_shards;
  for (std::size_t k = 0; k < shards.size(); ++k) {
    if (shards[k].empty()) continue;
    children.push_back(ShardState{spawn_shard(k, shards[k]), shards[k], k});
    spawned_shards.push_back(static_cast<int>(k));
  }

  bool ok = true;
  const int max_respawns = std::max(0, options.max_respawns);
  for (ShardState& child : children) {
    double shard_busy = 0.0;
    int respawns_used = 0;
    // The chaos hook targets the first spawned worker, once.
    std::size_t chaos_countdown =
        (&child == children.data() && options.chaos_kill_after > 0)
            ? static_cast<std::size_t>(options.chaos_kill_after)
            : 0;
    for (;;) {
      std::string line;
      while (child.process.read_line(line)) {
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "done") {
          std::size_t index = 0;
          std::string source;
          int item_ok = 1;
          if (ls >> index >> source >> item_ok) {
            ++summary.completed;
            if (!item_ok) ++summary.failed;
            if (source == "exact") ++summary.exact_hits;
            const auto it = std::find(child.remaining.begin(),
                                      child.remaining.end(), index);
            if (it != child.remaining.end()) child.remaining.erase(it);
            if (chaos_countdown > 0 && --chaos_countdown == 0) {
              child.process.kill(SIGKILL);
            }
          }
        } else if (tag == "busy") {
          double busy = 0.0;
          if (ls >> busy) shard_busy += busy;
        }
      }
      const int exit_code = child.process.wait();
      // Every item reported done = the shard is complete; results and
      // ledger lines land *before* the done report, so even a worker
      // killed on its way out left nothing unwritten.
      if (child.remaining.empty()) break;
      if (exit_code != 0 && respawns_used < max_respawns) {
        // Abnormal exit with work outstanding: re-exec the worker with
        // exactly the unreported items. An item the dead worker finished
        // without reporting recomputes deterministically, so a duplicate
        // result line is byte-identical and the results file is
        // unchanged as a set of lines. Isolate any torn tail first so
        // the respawned worker's appends start on a fresh line.
        terminate_torn_tail(options.results_path);
        terminate_torn_tail(ledger_path);
        ++respawns_used;
        ++summary.respawns;
        child.process = spawn_shard(child.shard, child.remaining);
        continue;
      }
      // Clean-but-incomplete (a worker logic bug) or budget exhausted.
      ok = false;
      break;
    }
    summary.critical_path_s = std::max(summary.critical_path_s, shard_busy);
  }
  summary.ok = ok;

  if (!options.cache_path.empty()) {
    CompileCache merged;
    merged.load(options.cache_path);
    for (const int k : spawned_shards) {
      const std::string shard_file =
          options.cache_path + ".w" + std::to_string(k);
      merged.load(shard_file);
      std::remove(shard_file.c_str());
    }
    merged.save(options.cache_path);
  }

  summary.wall_s = seconds_since(start);
  return summary;
}

}  // namespace dmfb
