#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "assay/scheduler.h"
#include "io/assay_format.h"

namespace dmfb {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Warm starts only help backends that anneal from an initial placement.
/// The portfolio seeds replica 0 from the memo and leaves the other
/// replicas on their fresh split seeds.
bool placer_accepts_warm_start(const std::string& placer) {
  return placer == "sa" || placer == "two-stage" || placer == "portfolio";
}

/// The refinement schedule for a warm-started compile: the configured
/// warm schedule clamped against the request's own anneal, so refinement
/// is never hotter, slower-cooling, or denser than (a quarter of) the
/// anneal it replaces. Without the clamp a request with a deliberately
/// short schedule would "refine" with more proposals than its own cold
/// compile — the warm path must always be the cheaper one.
AnnealingSchedule refinement_schedule(const AnnealingSchedule& warm,
                                      const AnnealingSchedule& cold) {
  AnnealingSchedule schedule = warm;
  schedule.initial_temperature =
      std::min(warm.initial_temperature, cold.initial_temperature);
  schedule.cooling_rate = std::min(warm.cooling_rate, cold.cooling_rate);
  schedule.min_temperature =
      std::max(warm.min_temperature, cold.min_temperature);
  schedule.iterations_per_module = std::min(
      warm.iterations_per_module, std::max(1, cold.iterations_per_module / 4));
  return schedule;
}

}  // namespace

const char* to_string(CompileSource source) {
  switch (source) {
    case CompileSource::kMiss:
      return "miss";
    case CompileSource::kExactHit:
      return "exact-hit";
    case CompileSource::kWarmStart:
      return "warm-start";
  }
  return "?";
}

CompileService::CompileService(ServiceOptions options)
    : options_(std::move(options)) {}

CompileResponse CompileService::compile(const CompileRequest& request) {
  const auto start = Clock::now();
  CompileResponse response;
  response.id = request.id;
  try {
    AssayCase assay = request.assay;
    if (assay.binding.empty()) {
      assay.binding = bind_operations(assay.graph, options_.library,
                                      request.options.binding_policy);
    }

    if (!request.use_cache) {
      response.result = std::make_shared<const PipelineResult>(
          SynthesisPipeline(request.options).run(assay));
      response.source = CompileSource::kMiss;
      response.ok = true;
      response.wall_seconds = seconds_since(start);
      return response;
    }

    const std::uint64_t assay_fp = assay_fingerprint(assay);
    const std::uint64_t opts_fp = options_fingerprint(request.options);
    // The schedule is deterministic and cheap next to placement; running
    // it up front yields the structure signature the warm lookup needs.
    const Schedule schedule = list_schedule(assay.graph, assay.binding,
                                            assay.scheduler_options);
    const std::uint64_t signature = schedule_signature(schedule);

    CompileCache::Lookup cached =
        cache_.lookup(assay_fp, opts_fp, signature);
    if (cached.exact) {
      response.result = std::move(cached.exact);
      response.source = CompileSource::kExactHit;
      response.ok = true;
      response.wall_seconds = seconds_since(start);
      return response;
    }

    PipelineOptions run_options = request.options;
    const bool warm = cached.warm_placement != nullptr &&
                      placer_accepts_warm_start(run_options.placer);
    if (warm) {
      run_options.initial_placement = cached.warm_placement;
      run_options.placer_context.annealing = refinement_schedule(
          options_.warm_annealing, request.options.placer_context.annealing);
      run_options.warm_links = std::move(cached.warm_links);
    }
    if (run_options.routing.persist_congestion_history) {
      // Compile onto the layout's congestion record (a private copy — see
      // CompileCache::lookup) or start one for this layout.
      run_options.routing.congestion_ledger =
          cached.congestion ? std::move(cached.congestion)
                            : std::make_shared<std::vector<double>>();
    }

    auto result = std::make_shared<const PipelineResult>(
        SynthesisPipeline(run_options).run(assay));

    // The layout ledger carries measured route pressure forward; only a
    // routed plan measures anything.
    std::vector<RouteLink> links;
    if (result->routes.success) {
      links = routing::reweight_links(
          routing::extract_links(assay.graph, result->schedule),
          result->routes);
    }
    cache_.store(assay_fp, opts_fp, signature, result, std::move(links),
                 std::move(run_options.routing.congestion_ledger));

    response.result = std::move(result);
    response.source = warm ? CompileSource::kWarmStart : CompileSource::kMiss;
    response.ok = true;
  } catch (const std::exception& error) {
    response.ok = false;
    response.error = error.what();
  }
  response.wall_seconds = seconds_since(start);
  return response;
}

}  // namespace dmfb
