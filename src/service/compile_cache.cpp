#include "service/compile_cache.h"

#include <string_view>
#include <utility>

#include "util/hash.h"

namespace dmfb {
namespace {

void mix_string(HashStream& h, std::string_view s) { h.mix_bytes(s); }

void mix_weights(HashStream& h, const CostWeights& w) {
  h.mix(w.alpha).mix(w.beta).mix(w.lambda_overlap).mix(w.lambda_defect).mix(
      w.gamma);
}

void mix_annealing(HashStream& h, const AnnealingSchedule& s) {
  h.mix(s.initial_temperature)
      .mix(s.cooling_rate)
      .mix(s.iterations_per_module)
      .mix(s.min_temperature);
}

void mix_placer_context(HashStream& h, const PlacerContext& c) {
  h.mix(c.canvas_width).mix(c.canvas_height);
  h.mix(static_cast<std::uint64_t>(c.defects.size()));
  for (const Point& p : c.defects) h.mix(p.x).mix(p.y);
  // route_links / initial_placement are warm-start inputs, not identity.
  mix_annealing(h, c.annealing);
  h.mix(c.moves.single_move_probability)
      .mix(c.moves.rotate_probability)
      .mix(c.moves.use_controlling_window)
      .mix(c.moves.min_window);
  mix_weights(h, c.weights);
  h.mix(c.fti_options.allow_rotation);
  h.mix(static_cast<int>(c.engine));
  h.mix(c.two_stage_beta);
  mix_annealing(h, c.ltsa);
  h.mix(c.optimal.max_modules)
      .mix(c.optimal.allow_rotation)
      .mix(static_cast<std::int64_t>(c.optimal.max_nodes));
  h.mix(static_cast<int>(c.kamer_policy));
  h.mix(c.allow_rotation);
}

void mix_routing(HashStream& h, const RoutePlannerOptions& r) {
  h.mix(r.step_horizon)
      .mix(r.separation_cells)
      .mix(r.negotiation_rounds)
      .mix(r.present_congestion_weight)
      .mix(r.history_congestion_weight)
      .mix(r.persist_congestion_history)
      .mix(r.max_restarts);
  // r.seed is overridden by the pipeline's master seed; r.threads and
  // r.congestion_ledger do not change the plan (thread-count invariance is
  // pinned by test_parallel_routing; the ledger is warm-start state).
}

}  // namespace

std::uint64_t options_fingerprint(const PipelineOptions& options) {
  HashStream h(/*seed=*/0x5EF1CE00000001ULL);  // versioned domain tag
  h.mix(static_cast<int>(options.binding_policy));
  // options.scheduler: AssayCase runs use the case's own scheduler
  // options, which the canonical assay text covers; graph/binding runs
  // use these. Mix them so both paths are safe.
  h.mix(options.scheduler.constraints.max_concurrent_modules);
  for (const auto& [kind, limit] :
       options.scheduler.constraints.max_concurrent_by_kind) {
    h.mix(static_cast<int>(kind)).mix(limit);
  }
  h.mix(options.scheduler.constraints.dispense_duration_s)
      .mix(options.scheduler.constraints.max_concurrent_dispenses)
      .mix(options.scheduler.insert_storage);
  mix_string(h, options.scheduler.storage_spec.name);
  h.mix(static_cast<int>(options.scheduler.storage_spec.kind))
      .mix(options.scheduler.storage_spec.functional_width)
      .mix(options.scheduler.storage_spec.functional_height)
      .mix(options.scheduler.storage_spec.duration_s);

  mix_string(h, options.placer);
  mix_placer_context(h, options.placer_context);
  h.mix(options.place);
  h.mix(options.feedback_rounds);
  h.mix(options.deadline_s);
  h.mix(options.plan_droplet_routes);
  mix_string(h, options.router);
  mix_routing(h, options.routing);
  h.mix(options.chip_width).mix(options.chip_height);
  h.mix(options.simulate);
  // `simulation.engine` is deliberately *not* mixed: both engines are
  // bit-identical by contract, so a cached result serves either.
  h.mix(options.simulation.droplet_speed_cells_per_s)
      .mix(options.simulation.verify_routing)
      .mix(options.simulation.record_events);
  h.mix(options.evaluate_fault_tolerance);
  h.mix(options.seed);
  return h.value();
}

std::uint64_t schedule_signature(const Schedule& schedule) {
  HashStream h(/*seed=*/0x51614A7012345ULL);  // domain tag
  const auto& modules = schedule.modules();
  h.mix(static_cast<std::uint64_t>(modules.size()));
  for (const auto& m : modules) {
    h.mix(m.spec.footprint_width()).mix(m.spec.footprint_height());
  }
  for (std::size_t i = 0; i < modules.size(); ++i) {
    for (std::size_t j = i + 1; j < modules.size(); ++j) {
      if (modules[i].time_overlaps(modules[j])) {
        h.mix(static_cast<std::uint64_t>(i)).mix(
            static_cast<std::uint64_t>(j));
      }
    }
  }
  return h.value();
}

CompileCache::Lookup CompileCache::lookup(std::uint64_t assay_fp,
                                          std::uint64_t options_fp,
                                          std::uint64_t signature) {
  std::lock_guard lock(mutex_);
  Lookup result;

  if (const auto exact = exact_.find({assay_fp, options_fp});
      exact != exact_.end()) {
    result.exact = exact->second;
    ++stats_.exact_hits;
    return result;
  }

  if (const auto layout = layouts_.find(options_fp);
      layout != layouts_.end()) {
    if (const auto warm = layout->second.placements.find(signature);
        warm != layout->second.placements.end()) {
      result.warm_placement = warm->second;
    }
    result.warm_links = layout->second.links;
    if (layout->second.congestion) {
      // Private copy: the compile mutates it off-lock; store() merges it
      // back last-writer-wins.
      result.congestion =
          std::make_shared<std::vector<double>>(*layout->second.congestion);
    }
  }
  if (result.warm_placement) {
    ++stats_.warm_hits;
  } else {
    ++stats_.misses;
  }
  return result;
}

void CompileCache::store(std::uint64_t assay_fp, std::uint64_t options_fp,
                         std::uint64_t signature,
                         std::shared_ptr<const PipelineResult> result,
                         std::vector<RouteLink> links,
                         std::shared_ptr<std::vector<double>> congestion) {
  if (!result) return;
  std::lock_guard lock(mutex_);
  const auto [it, inserted] =
      exact_.insert_or_assign({assay_fp, options_fp}, result);
  if (inserted) ++stats_.entries;

  Layout& layout = layouts_[options_fp];
  if (result->placement.placement.module_count() > 0) {
    layout.placements[signature] = std::shared_ptr<const Placement>(
        result, &result->placement.placement);
  }
  if (!links.empty()) layout.links = std::move(links);
  if (congestion) layout.congestion = std::move(congestion);
}

CacheStats CompileCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace dmfb
