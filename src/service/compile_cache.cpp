#include "service/compile_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>

#include "util/hash.h"

namespace dmfb {
namespace {

void mix_string(HashStream& h, std::string_view s) { h.mix_bytes(s); }

void mix_weights(HashStream& h, const CostWeights& w) {
  h.mix(w.alpha).mix(w.beta).mix(w.lambda_overlap).mix(w.lambda_defect).mix(
      w.gamma);
}

void mix_annealing(HashStream& h, const AnnealingSchedule& s) {
  h.mix(s.initial_temperature)
      .mix(s.cooling_rate)
      .mix(s.iterations_per_module)
      .mix(s.min_temperature);
}

void mix_placer_context(HashStream& h, const PlacerContext& c) {
  h.mix(c.canvas_width).mix(c.canvas_height);
  h.mix(static_cast<std::uint64_t>(c.defects.size()));
  for (const Point& p : c.defects) h.mix(p.x).mix(p.y);
  // route_links / initial_placement are warm-start inputs, not identity.
  mix_annealing(h, c.annealing);
  h.mix(c.moves.single_move_probability)
      .mix(c.moves.rotate_probability)
      .mix(c.moves.use_controlling_window)
      .mix(c.moves.min_window);
  mix_weights(h, c.weights);
  h.mix(c.fti_options.allow_rotation);
  h.mix(static_cast<int>(c.engine));
  h.mix(c.two_stage_beta);
  mix_annealing(h, c.ltsa);
  h.mix(c.optimal.max_modules)
      .mix(c.optimal.allow_rotation)
      .mix(static_cast<std::int64_t>(c.optimal.max_nodes));
  h.mix(static_cast<int>(c.kamer_policy));
  h.mix(c.allow_rotation);
}

void mix_routing(HashStream& h, const RoutePlannerOptions& r) {
  h.mix(r.step_horizon)
      .mix(r.separation_cells)
      .mix(r.negotiation_rounds)
      .mix(r.present_congestion_weight)
      .mix(r.history_congestion_weight)
      .mix(r.persist_congestion_history)
      .mix(r.max_restarts);
  // r.seed is overridden by the pipeline's master seed; r.threads and
  // r.congestion_ledger do not change the plan (thread-count invariance is
  // pinned by test_parallel_routing; the ledger is warm-start state).
}

}  // namespace

std::uint64_t options_fingerprint(const PipelineOptions& options) {
  HashStream h(/*seed=*/0x5EF1CE00000001ULL);  // versioned domain tag
  h.mix(static_cast<int>(options.binding_policy));
  // options.scheduler: AssayCase runs use the case's own scheduler
  // options, which the canonical assay text covers; graph/binding runs
  // use these. Mix them so both paths are safe.
  h.mix(options.scheduler.constraints.max_concurrent_modules);
  for (const auto& [kind, limit] :
       options.scheduler.constraints.max_concurrent_by_kind) {
    h.mix(static_cast<int>(kind)).mix(limit);
  }
  h.mix(options.scheduler.constraints.dispense_duration_s)
      .mix(options.scheduler.constraints.max_concurrent_dispenses)
      .mix(options.scheduler.insert_storage);
  mix_string(h, options.scheduler.storage_spec.name);
  h.mix(static_cast<int>(options.scheduler.storage_spec.kind))
      .mix(options.scheduler.storage_spec.functional_width)
      .mix(options.scheduler.storage_spec.functional_height)
      .mix(options.scheduler.storage_spec.duration_s);

  mix_string(h, options.placer);
  mix_placer_context(h, options.placer_context);
  h.mix(options.place);
  h.mix(options.feedback_rounds);
  h.mix(options.deadline_s);
  h.mix(options.plan_droplet_routes);
  mix_string(h, options.router);
  mix_routing(h, options.routing);
  h.mix(options.chip_width).mix(options.chip_height);
  h.mix(options.simulate);
  // `simulation.engine` is deliberately *not* mixed: both engines are
  // bit-identical by contract, so a cached result serves either.
  h.mix(options.simulation.droplet_speed_cells_per_s)
      .mix(options.simulation.verify_routing)
      .mix(options.simulation.record_events);
  // Online fault recovery changes what the simulate stage produces, so
  // the plan and every outcome-affecting recovery knob fork the key.
  h.mix(static_cast<std::uint64_t>(options.fault_plan.faults.size()));
  for (const PlannedFault& fault : options.fault_plan.faults) {
    h.mix(fault.cell.x).mix(fault.cell.y).mix(fault.time_s).mix(
        static_cast<std::uint64_t>(fault.after_event));
  }
  if (!options.fault_plan.faults.empty()) {
    h.mix(static_cast<int>(options.recovery.policy))
        .mix(options.recovery.max_cycles)
        .mix(options.recovery.enable_reconfigure)
        .mix(options.recovery.enable_reroute)
        .mix(options.recovery.enable_replace);
    mix_string(h, options.recovery.replace_placer);
    // recovery.deadline_s is a host-wall budget (execution-only, like
    // `threads`); recovery.sim is overridden by `simulation` above.
  }
  h.mix(options.evaluate_fault_tolerance);
  h.mix(options.seed);
  return h.value();
}

std::uint64_t schedule_signature(const Schedule& schedule) {
  HashStream h(/*seed=*/0x51614A7012345ULL);  // domain tag
  const auto& modules = schedule.modules();
  h.mix(static_cast<std::uint64_t>(modules.size()));
  for (const auto& m : modules) {
    h.mix(m.spec.footprint_width()).mix(m.spec.footprint_height());
  }
  for (std::size_t i = 0; i < modules.size(); ++i) {
    for (std::size_t j = i + 1; j < modules.size(); ++j) {
      if (modules[i].time_overlaps(modules[j])) {
        h.mix(static_cast<std::uint64_t>(i)).mix(
            static_cast<std::uint64_t>(j));
      }
    }
  }
  return h.value();
}

CompileCache::Lookup CompileCache::lookup(std::uint64_t assay_fp,
                                          std::uint64_t options_fp,
                                          std::uint64_t signature) {
  std::lock_guard lock(mutex_);
  Lookup result;

  if (const auto exact = exact_.find({assay_fp, options_fp});
      exact != exact_.end()) {
    result.exact = exact->second;
    ++stats_.exact_hits;
    return result;
  }

  if (const auto layout = layouts_.find(options_fp);
      layout != layouts_.end()) {
    if (const auto warm = layout->second.placements.find(signature);
        warm != layout->second.placements.end()) {
      result.warm_placement = warm->second;
    }
    result.warm_links = layout->second.links;
    if (layout->second.congestion) {
      // Private copy: the compile mutates it off-lock; store() merges it
      // back last-writer-wins.
      result.congestion =
          std::make_shared<std::vector<double>>(*layout->second.congestion);
    }
  }
  if (result.warm_placement) {
    ++stats_.warm_hits;
  } else {
    ++stats_.misses;
  }
  return result;
}

void CompileCache::store(std::uint64_t assay_fp, std::uint64_t options_fp,
                         std::uint64_t signature,
                         std::shared_ptr<const PipelineResult> result,
                         std::vector<RouteLink> links,
                         std::shared_ptr<std::vector<double>> congestion) {
  if (!result) return;
  std::lock_guard lock(mutex_);
  const auto [it, inserted] =
      exact_.insert_or_assign({assay_fp, options_fp}, result);
  if (inserted) ++stats_.entries;

  Layout& layout = layouts_[options_fp];
  if (result->placement.placement.module_count() > 0) {
    layout.placements[signature] = std::shared_ptr<const Placement>(
        result, &result->placement.placement);
  }
  if (!links.empty()) layout.links = std::move(links);
  if (congestion) layout.congestion = std::move(congestion);
}

CacheStats CompileCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

// --- persistence ------------------------------------------------------
//
// Versioned line-oriented text: one "entry ... end" block per exact
// entry. Doubles are serialized as their raw 64-bit patterns, so a
// load reproduces every value bit for bit; strings (assay names,
// module labels/specs) are rest-of-line fields, so they may contain
// spaces. The loader is strict per entry but tolerant per file: the
// first malformed line ends the load, keeping the entries already read
// — a truncated or garbage file is just a colder cache.

namespace {

constexpr const char kCacheHeader[] = "dmfb-compile-cache v1";

std::uint64_t double_bits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// Rest-of-line string field: "<key> <value...>". Returns false when the
/// line does not start with `key` + space (empty value is allowed).
bool read_tail(const std::string& line, const char* key, std::string& out) {
  const std::size_t len = std::strlen(key);
  if (line.compare(0, len, key) != 0) return false;
  if (line.size() == len) {
    out.clear();
    return true;
  }
  if (line[len] != ' ') return false;
  out = line.substr(len + 1);
  return true;
}

void write_entry(std::ostream& os, std::uint64_t assay_fp,
                 std::uint64_t options_fp, std::uint64_t signature,
                 const PipelineResult& r) {
  os << "entry " << assay_fp << ' ' << options_fp << ' ' << signature
     << '\n';
  os << "name " << r.assay_name << '\n';
  os << "seed " << r.seed << '\n';
  os << "status " << (r.ok ? 1 : 0) << ' ' << r.error << '\n';
  os << "peak " << r.peak_concurrent_cells << '\n';
  const CostBreakdown& c = r.placement.cost;
  os << "cost " << c.area_cells << ' ' << c.overlap_cells << ' '
     << c.defect_cells << ' ' << double_bits(c.fti) << ' '
     << c.route_pressure << ' ' << double_bits(c.value) << '\n';
  os << "fti " << r.fti.covered_cells << ' ' << r.fti.total_cells << ' '
     << r.fti.array.x << ' ' << r.fti.array.y << ' ' << r.fti.array.width
     << ' ' << r.fti.array.height << '\n';
  os << "makespan " << double_bits(r.makespan_s) << ' '
     << double_bits(r.transport_makespan_s) << '\n';
  os << "routes " << (r.routes.success ? 1 : 0) << ' ' << r.routes.total_steps
     << ' ' << r.routes.total_moved_cells << ' '
     << r.routes.negotiation_rounds << '\n';
  os << "rounds " << r.selected_round << ' ' << r.feedback_history.size()
     << '\n';
  for (const FeedbackRoundResult& round : r.feedback_history) {
    os << "round " << round.round << ' ' << round.seed << ' '
       << (round.routed ? 1 : 0) << ' '
       << double_bits(round.transport_makespan_s) << ' '
       << double_bits(round.placement_cost) << '\n';
  }
  const Placement& p = r.placement.placement;
  os << "placement " << p.canvas_width() << ' ' << p.canvas_height() << ' '
     << p.module_count() << '\n';
  for (const PlacedModule& m : p.modules()) {
    os << "module " << m.spec.functional_width << ' '
       << m.spec.functional_height << ' ' << static_cast<int>(m.spec.kind)
       << ' ' << double_bits(m.spec.duration_s) << ' '
       << double_bits(m.start_s) << ' ' << double_bits(m.end_s) << ' '
       << m.anchor.x << ' ' << m.anchor.y << ' ' << (m.rotated ? 1 : 0)
       << '\n';
    os << "spec " << m.spec.name << '\n';
    os << "label " << m.label << '\n';
  }
  os << "end\n";
}

/// Parses one entry after its "entry" line was consumed. Returns null on
/// any malformation (the caller then abandons the rest of the file).
std::shared_ptr<const PipelineResult> read_entry(std::istream& is) {
  auto result = std::make_shared<PipelineResult>();
  PipelineResult& r = *result;
  std::string line;
  std::string tail;

  const auto next = [&](const char* key, auto&... fields) {
    if (!std::getline(is, line)) return false;
    std::istringstream ls(line);
    std::string word;
    ls >> word;
    if (word != key) return false;
    return static_cast<bool>((ls >> ... >> fields));
  };

  if (!std::getline(is, line) || !read_tail(line, "name", r.assay_name)) {
    return nullptr;
  }
  if (!next("seed", r.seed)) return nullptr;
  {
    if (!std::getline(is, line)) return nullptr;
    std::istringstream ls(line);
    std::string word;
    int ok = 1;
    if (!(ls >> word >> ok) || word != "status") return nullptr;
    r.ok = ok != 0;
    ls.get();  // the separating space (absent on an empty error)
    std::getline(ls, r.error);
  }
  if (!next("peak", r.peak_concurrent_cells)) return nullptr;
  {
    CostBreakdown& c = r.placement.cost;
    std::uint64_t fti_bits = 0, value_bits = 0;
    if (!next("cost", c.area_cells, c.overlap_cells, c.defect_cells,
              fti_bits, c.route_pressure, value_bits)) {
      return nullptr;
    }
    c.fti = bits_double(fti_bits);
    c.value = bits_double(value_bits);
  }
  if (!next("fti", r.fti.covered_cells, r.fti.total_cells, r.fti.array.x,
            r.fti.array.y, r.fti.array.width, r.fti.array.height)) {
    return nullptr;
  }
  {
    std::uint64_t makespan_bits = 0, transport_bits = 0;
    if (!next("makespan", makespan_bits, transport_bits)) return nullptr;
    r.makespan_s = bits_double(makespan_bits);
    r.transport_makespan_s = bits_double(transport_bits);
  }
  {
    int routed = 0;
    if (!next("routes", routed, r.routes.total_steps,
              r.routes.total_moved_cells, r.routes.negotiation_rounds)) {
      return nullptr;
    }
    r.routes.success = routed != 0;
  }
  std::size_t round_count = 0;
  if (!next("rounds", r.selected_round, round_count)) return nullptr;
  for (std::size_t i = 0; i < round_count; ++i) {
    FeedbackRoundResult round;
    int routed = 0;
    std::uint64_t tm_bits = 0, pc_bits = 0;
    if (!next("round", round.round, round.seed, routed, tm_bits, pc_bits)) {
      return nullptr;
    }
    round.routed = routed != 0;
    round.transport_makespan_s = bits_double(tm_bits);
    round.placement_cost = bits_double(pc_bits);
    r.feedback_history.push_back(round);
  }

  int canvas_width = 0, canvas_height = 0, module_count = 0;
  if (!next("placement", canvas_width, canvas_height, module_count)) {
    return nullptr;
  }
  std::vector<PlacedModule> modules;
  modules.reserve(static_cast<std::size_t>(std::max(0, module_count)));
  for (int i = 0; i < module_count; ++i) {
    PlacedModule m;
    int kind = 0, rotated = 0;
    std::uint64_t duration_bits = 0, start_bits = 0, end_bits = 0;
    if (!next("module", m.spec.functional_width, m.spec.functional_height,
              kind, duration_bits, start_bits, end_bits, m.anchor.x,
              m.anchor.y, rotated)) {
      return nullptr;
    }
    m.spec.kind = static_cast<ModuleKind>(kind);
    m.spec.duration_s = bits_double(duration_bits);
    m.start_s = bits_double(start_bits);
    m.end_s = bits_double(end_bits);
    m.rotated = rotated != 0;
    if (!std::getline(is, line) || !read_tail(line, "spec", m.spec.name)) {
      return nullptr;
    }
    if (!std::getline(is, line) || !read_tail(line, "label", m.label)) {
      return nullptr;
    }
    modules.push_back(std::move(m));
  }
  if (module_count > 0) {
    try {
      r.placement.placement =
          Placement(std::move(modules), canvas_width, canvas_height);
    } catch (const std::exception&) {
      return nullptr;  // inconsistent geometry: treat the entry as corrupt
    }
  }

  if (!std::getline(is, line) || line != "end") return nullptr;
  return result;
}

}  // namespace

bool CompileCache::save(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) return false;
    os << kCacheHeader << '\n';
    std::lock_guard lock(mutex_);
    for (const auto& [key, result] : exact_) {
      // The warm signature is recoverable for stored results with a
      // placement (store() keyed them), but the exact map does not keep
      // it; re-derive from the layout table.
      std::uint64_t signature = 0;
      if (const auto layout = layouts_.find(key.second);
          layout != layouts_.end()) {
        for (const auto& [sig, placement] : layout->second.placements) {
          if (placement.get() == &result->placement.placement) {
            signature = sig;
            break;
          }
        }
      }
      write_entry(os, key.first, key.second, signature, *result);
    }
    os.flush();
    if (!os) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::size_t CompileCache::load(const std::string& path) {
  std::ifstream is(path);
  if (!is) return 0;
  std::string line;
  if (!std::getline(is, line) || line != kCacheHeader) return 0;

  std::size_t loaded = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string word;
    std::uint64_t assay_fp = 0, options_fp = 0, signature = 0;
    if (!(ls >> word >> assay_fp >> options_fp >> signature) ||
        word != "entry") {
      break;  // corrupt from here on: keep what loaded so far
    }
    const std::shared_ptr<const PipelineResult> result = read_entry(is);
    if (!result) break;
    {
      std::lock_guard lock(mutex_);
      const auto [it, inserted] =
          exact_.insert_or_assign({assay_fp, options_fp}, result);
      if (inserted) ++stats_.entries;
      if (result->placement.placement.module_count() > 0) {
        layouts_[options_fp].placements[signature] =
            std::shared_ptr<const Placement>(result,
                                             &result->placement.placement);
      }
    }
    ++loaded;
  }
  return loaded;
}

}  // namespace dmfb
