// server.h — the synthesis service's wire layer: a JSON-line protocol
// over any line transport (stdin/stdout or a Unix socket; both live in
// tools/dmfb_serve.cpp), a bounded request queue, and a worker pool of
// CompileService calls.
//
// Protocol — one JSON object per line, one response line per request:
//
//   -> {"id":"r1","assay":"assay pcr\nop 0 mix M1\n...\nend",
//       "options":{"seed":7,"placer":"sa","router":"negotiated",
//                  "canvas":[24,24],"chip":[16,16],
//                  "defects":[[3,4]],"gamma":0.02,
//                  "feedback_rounds":2,"deadline_s":120.0,
//                  "persist_congestion_history":true},
//       "cache":true}
//   <- {"id":"r1","ok":true,"source":"miss","wall_s":0.41,
//       "result":{"assay":"pcr","seed":7,"area_cells":63,
//                 "cost":84.0,"fti":0.55,"routed":true,
//                 "makespan_s":24.0,"transport_makespan_s":25.3,
//                 "selected_round":1,"rounds":2,
//                 "placement":"placement 24 24\nplace 0 ...\nend\n"}}
//
// The `assay` field is the io/assay_format text (embedded verbatim, \n
// escaped per JSON), so the wire format reuses the repo's one assay
// parser. Malformed requests produce {"id":...,"ok":false,"error":...}
// lines (id "" when even the id could not be parsed). Two control lines
// bypass the queue: {"cmd":"stats"} answers with cache counters,
// {"cmd":"shutdown"} drains the queue and ends serve().
//
// Responses are written as workers finish, so they may interleave out of
// request order — clients correlate by id. Writes are serialized
// internally; `read_line`/`write_line` need not be thread-safe.
#pragma once

#include <functional>
#include <string>

#include "biochip/module_library.h"
#include "io/json.h"
#include "service/service.h"

namespace dmfb {

/// Applies a wire "options" JSON object onto `options` (the request
/// surface documented above: seed, placer, router, canvas, chip,
/// defects, gamma, beta, engine, annealing, feedback_rounds, deadline_s,
/// plan_droplet_routes, persist_congestion_history, simulate,
/// fault_plan ([[t,x,y],...] mid-run injections — the response then
/// carries a "recovery" telemetry block), recovery_deadline_s,
/// recovery_max_cycles, evaluate_fault_tolerance, binding_policy).
/// Unknown keys throw
/// std::invalid_argument — a misspelled option that changed nothing
/// would be the worst kind of service bug to chase from the client
/// side. Shared by the compile server and the batch driver's worker
/// handshake (service/batch.h), so both speak the same option dialect.
void parse_pipeline_options(const json::Value& value,
                            PipelineOptions& options);

/// Dual of parse_pipeline_options: renders the full JSON option surface
/// of `options` — every key the parser accepts, always emitted — so
/// `parse_pipeline_options(pipeline_options_to_json(o), fresh)`
/// reproduces every wire-reachable field of `o` exactly (pinned by
/// tests/test_service.cpp). Fields outside the wire surface (scheduler
/// details, move mix, LTSA schedule, ...) are neither emitted nor
/// parsed; drivers that need them must set them on both sides.
json::Value pipeline_options_to_json(const PipelineOptions& options);

struct ServerOptions {
  /// Compile workers (0 = hardware concurrency).
  int workers = 0;
  /// Bounded request queue: when full, the reader blocks instead of
  /// buffering unboundedly (backpressure through the transport).
  std::size_t queue_capacity = 64;
  ServiceOptions service;
};

class CompileServer {
 public:
  explicit CompileServer(ServerOptions options = {});

  /// Serves requests until `read_line` reports end of input (returns
  /// false) or a shutdown command arrives; pending requests drain before
  /// returning. `read_line` is called from the invoking thread only;
  /// `write_line` receives one complete response line (no trailing
  /// newline) and is serialized internally.
  void serve(const std::function<bool(std::string&)>& read_line,
             const std::function<void(const std::string&)>& write_line);

  /// The in-process service (tests and benches call compile() directly).
  CompileService& service() { return service_; }
  const ServerOptions& options() const { return options_; }

  /// Parses one request line into a CompileRequest. Throws
  /// json::JsonError / ParseError / std::invalid_argument on malformed
  /// input. Exposed for tests and for bench_service's traffic generator.
  CompileRequest parse_request(const std::string& line) const;

  /// Renders a response line (without trailing newline).
  static std::string render_response(const CompileResponse& response);

 private:
  ServerOptions options_;
  CompileService service_;
};

}  // namespace dmfb
