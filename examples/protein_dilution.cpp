// protein_dilution — sample preparation by serial dilution, a classic
// droplet-based protocol: each dilutor merges the sample with buffer and
// splits the result, halving the protein concentration per level. One
// SynthesisPipeline run synthesizes the dilution tree, places it, and
// simulates it; the example prints the measured concentration at every
// dilutor.
//
//   $ ./examples/protein_dilution [levels]
#include <cstdlib>
#include <iostream>

#include "assay/assay_library.h"
#include "assay/pipeline.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dmfb;

  const int levels = argc >= 2 ? std::atoi(argv[1]) : 3;
  const ModuleLibrary library = ModuleLibrary::standard();
  const AssayCase assay = protein_dilution_assay(levels, library);

  PipelineOptions options;
  options.placer = "sa";
  options.placer_context.canvas_width = 32;
  options.placer_context.canvas_height = 32;
  options.placer_context.annealing.initial_temperature = 2000.0;
  options.placer_context.annealing.cooling_rate = 0.85;
  options.placer_context.annealing.iterations_per_module = 150;
  options.simulate = true;

  const PipelineResult result = SynthesisPipeline(options).run(assay);
  std::cout << "serial dilution, " << levels << " levels: "
            << assay.graph.operation_count() << " operations, makespan "
            << result.transport_makespan_s << " s (incl. transport)\n"
            << "placed: " << result.cost().area_cells << " cells ("
            << result.cost().area_mm2() << " mm^2), FTI "
            << result.fti.fti() << "\n\n";

  if (!result.simulation.success) {
    std::cerr << "simulation failed: " << result.simulation.failure_reason
              << '\n';
    return 1;
  }

  TextTable table("Measured protein concentration per dilution operation");
  table.set_header({"operation", "protein fraction", "expected"});
  for (const auto& op : assay.graph.operations()) {
    if (op.type != OperationType::kDilute) continue;
    const auto it = result.simulation.op_outputs.find(op.id);
    if (it == result.simulation.op_outputs.end()) continue;
    // Depth in the dilution tree = number of dilutors on the path from
    // the root, derivable from the longest-path structure; expected
    // concentration halves per level.
    int depth = 1;
    OperationId cursor = op.id;
    while (true) {
      bool found_parent = false;
      for (const OperationId pred : assay.graph.predecessors(cursor)) {
        if (assay.graph.operation(pred).type == OperationType::kDilute) {
          cursor = pred;
          ++depth;
          found_parent = true;
          break;
        }
      }
      if (!found_parent) break;
    }
    table.add_row({op.label,
                   format_double(it->second.fraction_of("protein"), 6),
                   format_double(1.0 / (1 << depth), 6)});
  }
  table.print(std::cout);
  std::cout << "\nassay completed; " << result.simulation.routes_planned
            << " droplet routes planned\n";
  return 0;
}
