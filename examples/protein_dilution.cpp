// protein_dilution — sample preparation by serial dilution, a classic
// droplet-based protocol: each dilutor merges the sample with buffer and
// splits the result, halving the protein concentration per level. The
// example synthesizes the dilution tree, places it, simulates it, and
// prints the measured concentration at every detector.
//
//   $ ./examples/protein_dilution [levels]
#include <cstdlib>
#include <iostream>

#include "assay/assay_library.h"
#include "assay/synthesis.h"
#include "core/fti.h"
#include "core/sa_placer.h"
#include "sim/simulator.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dmfb;

  const int levels = argc >= 2 ? std::atoi(argv[1]) : 3;
  const ModuleLibrary library = ModuleLibrary::standard();
  const AssayCase assay = protein_dilution_assay(levels, library);

  const SynthesisResult synth = synthesize_with_binding(
      assay.graph, assay.binding, assay.scheduler_options);
  std::cout << "serial dilution, " << levels << " levels: "
            << assay.graph.operation_count() << " operations, makespan "
            << synth.makespan_s << " s\n";

  SaPlacerOptions options;
  options.canvas_width = 32;
  options.canvas_height = 32;
  options.schedule.initial_temperature = 2000.0;
  options.schedule.cooling_rate = 0.85;
  options.schedule.iterations_per_module = 150;
  const PlacementOutcome placed =
      place_simulated_annealing(synth.schedule, options);
  std::cout << "placed: " << placed.cost.area_cells << " cells ("
            << placed.cost.area_mm2() << " mm^2), FTI "
            << evaluate_fti(placed.placement).fti() << "\n\n";

  const Chip chip(32, 32);
  const Simulator simulator;
  const SimulationResult run =
      simulator.run(assay.graph, synth.schedule, placed.placement, chip);
  if (!run.success) {
    std::cerr << "simulation failed: " << run.failure_reason << '\n';
    return 1;
  }

  TextTable table("Measured protein concentration per dilution operation");
  table.set_header({"operation", "protein fraction", "expected"});
  for (const auto& op : assay.graph.operations()) {
    if (op.type != OperationType::kDilute) continue;
    const auto it = run.op_outputs.find(op.id);
    if (it == run.op_outputs.end()) continue;
    // Depth in the dilution tree = number of dilutors on the path from
    // the root, derivable from the longest-path structure; expected
    // concentration halves per level.
    int depth = 1;
    OperationId cursor = op.id;
    while (true) {
      bool found_parent = false;
      for (const OperationId pred : assay.graph.predecessors(cursor)) {
        if (assay.graph.operation(pred).type == OperationType::kDilute) {
          cursor = pred;
          ++depth;
          found_parent = true;
          break;
        }
      }
      if (!found_parent) break;
    }
    table.add_row({op.label,
                   format_double(it->second.fraction_of("protein"), 6),
                   format_double(1.0 / (1 << depth), 6)});
  }
  table.print(std::cout);
  std::cout << "\nassay completed; " << run.routes_planned
            << " droplet routes planned\n";
  return 0;
}
