// multiplexed_diagnostics — the concurrent-assay workload that motivates
// dynamic reconfigurability in the paper's introduction (clinical
// diagnostics on a shared array, after Srinivasan et al.): S samples are
// each mixed with R reagents and optically detected, all on one chip.
//
// Shows how the resource constraint (how many mixers may run at once)
// trades assay completion time against chip area.
//
//   $ ./examples/multiplexed_diagnostics [samples reagents]
#include <cstdlib>
#include <iostream>

#include "assay/assay_library.h"
#include "assay/synthesis.h"
#include "core/fti.h"
#include "core/sa_placer.h"
#include "sim/simulator.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dmfb;

  const int samples = argc >= 3 ? std::atoi(argv[1]) : 2;
  const int reagents = argc >= 3 ? std::atoi(argv[2]) : 3;
  const ModuleLibrary library = ModuleLibrary::standard();

  std::cout << "multiplexed in-vitro diagnostics: " << samples
            << " samples x " << reagents << " reagents\n\n";

  TextTable table("Concurrency vs completion time vs chip area");
  table.set_header({"max mixers", "makespan (s)", "peak cells",
                    "placed cells", "area (mm^2)", "FTI"});

  for (const int max_mixers : {1, 2, 4, 8}) {
    AssayCase assay = multiplexed_diagnostics_assay(samples, reagents,
                                                    library);
    assay.scheduler_options.constraints.max_concurrent_modules = max_mixers;
    const SynthesisResult synth = synthesize_with_binding(
        assay.graph, assay.binding, assay.scheduler_options);

    SaPlacerOptions options;
    options.canvas_width = 32;
    options.canvas_height = 32;
    options.schedule.initial_temperature = 2000.0;
    options.schedule.cooling_rate = 0.85;
    options.schedule.iterations_per_module = 150;
    const PlacementOutcome placed =
        place_simulated_annealing(synth.schedule, options);
    const double fti = evaluate_fti(placed.placement).fti();

    table.add_row({std::to_string(max_mixers),
                   format_double(synth.makespan_s, 1),
                   std::to_string(synth.peak_concurrent_cells),
                   std::to_string(placed.cost.area_cells),
                   format_mm2(placed.cost.area_mm2()),
                   format_double(fti, 4)});

    // Sanity: the most parallel configuration actually executes.
    if (max_mixers == 4) {
      const Chip chip(32, 32);
      const Simulator simulator;
      const auto run = simulator.run(assay.graph, synth.schedule,
                                     placed.placement, chip);
      if (!run.success) {
        std::cerr << "simulation failed: " << run.failure_reason << '\n';
        return 1;
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nmore concurrency -> shorter assay, bigger array: the"
               " trade-off a shared\ndiagnostic chip navigates per §1 of"
               " the paper.\n";
  return 0;
}
