// multiplexed_diagnostics — the concurrent-assay workload that motivates
// dynamic reconfigurability in the paper's introduction (clinical
// diagnostics on a shared array, after Srinivasan et al.): S samples are
// each mixed with R reagents and optically detected, all on one chip.
//
// Shows how the resource constraint (how many mixers may run at once)
// trades assay completion time against chip area. Each configuration is
// compiled by one SynthesisPipeline run; the most parallel one is also
// executed droplet-by-droplet.
//
//   $ ./examples/multiplexed_diagnostics [samples reagents]
#include <cstdlib>
#include <iostream>

#include "assay/assay_library.h"
#include "assay/pipeline.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dmfb;

  const int samples = argc >= 3 ? std::atoi(argv[1]) : 2;
  const int reagents = argc >= 3 ? std::atoi(argv[2]) : 3;
  const ModuleLibrary library = ModuleLibrary::standard();

  std::cout << "multiplexed in-vitro diagnostics: " << samples
            << " samples x " << reagents << " reagents\n\n";

  TextTable table("Concurrency vs completion time vs chip area");
  table.set_header({"max mixers", "makespan (s)", "peak cells",
                    "placed cells", "area (mm^2)", "FTI"});

  for (const int max_mixers : {1, 2, 4, 8}) {
    AssayCase assay = multiplexed_diagnostics_assay(samples, reagents,
                                                    library);
    assay.scheduler_options.constraints.max_concurrent_modules = max_mixers;

    PipelineOptions options;
    options.placer = "sa";
    options.placer_context.canvas_width = 32;
    options.placer_context.canvas_height = 32;
    options.placer_context.annealing.initial_temperature = 2000.0;
    options.placer_context.annealing.cooling_rate = 0.85;
    options.placer_context.annealing.iterations_per_module = 150;
    options.plan_droplet_routes = false;
    // Sanity: the most parallel configuration actually executes.
    options.simulate = max_mixers == 4;

    const PipelineResult result = SynthesisPipeline(options).run(assay);
    if (options.simulate && !result.simulation.success) {
      std::cerr << "simulation failed: " << result.simulation.failure_reason
                << '\n';
      return 1;
    }

    table.add_row({std::to_string(max_mixers),
                   format_double(result.transport_makespan_s, 1),
                   std::to_string(result.peak_concurrent_cells),
                   std::to_string(result.cost().area_cells),
                   format_mm2(result.cost().area_mm2()),
                   format_double(result.fti.fti(), 4)});
  }
  table.print(std::cout);
  std::cout << "\nmore concurrency -> shorter assay, bigger array: the"
               " trade-off a shared\ndiagnostic chip navigates per §1 of"
               " the paper.\n";
  return 0;
}
