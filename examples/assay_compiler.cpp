// assay_compiler — a file-driven CLI for the whole flow: reads an assay
// description (io/assay_format.h), synthesizes, places (two-stage),
// reports area/FTI, writes the placement and SVG figures.
//
//   $ ./examples/assay_compiler                 # compiles a built-in demo
//   $ ./examples/assay_compiler my.assay 30     # file + beta
//
// If the input file does not exist, the paper's PCR assay is written to
// it first, so `assay_compiler pcr.assay` is self-bootstrapping.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "assay/synthesis.h"
#include "core/fti.h"
#include "core/two_stage_placer.h"
#include "io/assay_format.h"
#include "util/svg.h"

int main(int argc, char** argv) {
  using namespace dmfb;

  const std::string path = argc >= 2 ? argv[1] : "pcr.assay";
  const double beta = argc >= 3 ? std::atof(argv[2]) : 30.0;
  const ModuleLibrary library = ModuleLibrary::standard();

  // Bootstrap: write the PCR demo if the input is missing.
  {
    std::ifstream probe(path);
    if (!probe) {
      std::ofstream out(path);
      write_assay(out, pcr_mixing_assay());
      std::cout << "wrote demo assay to " << path << '\n';
    }
  }

  AssayCase assay;
  try {
    std::ifstream in(path);
    assay = read_assay(in, library);
  } catch (const ParseError& e) {
    std::cerr << path << ": " << e.what() << '\n';
    return 1;
  }
  std::cout << "assay '" << assay.name << "': "
            << assay.graph.operation_count() << " operations, "
            << assay.binding.size() << " bound modules\n";

  const SynthesisResult synth = synthesize_with_binding(
      assay.graph, assay.binding, assay.scheduler_options);
  std::cout << "schedule: makespan " << synth.makespan_s << " s, peak "
            << synth.peak_concurrent_cells << " concurrent cells\n";

  TwoStageOptions options;
  options.beta = beta;
  const TwoStageOutcome placed = place_two_stage(synth.schedule, options);
  const FtiResult fti = evaluate_fti(placed.stage2.placement);
  std::cout << "placement (beta=" << beta << "): "
            << placed.stage2.cost.area_cells << " cells ("
            << placed.stage2.cost.area_mm2() << " mm^2), FTI " << fti.fti()
            << '\n';

  // Artifacts: placement file + one SVG per slice.
  const std::string placement_path = path + ".placement";
  {
    std::ofstream out(placement_path);
    write_placement(out, placed.stage2.placement);
  }
  const Rect box = placed.stage2.placement.bounding_box();
  const auto& slices = placed.stage2.placement.slice_members();
  for (std::size_t s = 0; s < slices.size(); ++s) {
    std::vector<SvgRect> rects;
    for (const int index : slices[s]) {
      const auto& m = placed.stage2.placement.module(index);
      Rect fp = m.footprint();
      fp.x -= box.x;
      fp.y -= box.y;
      rects.push_back(
          SvgRect{fp, m.label, palette_color(static_cast<std::size_t>(index))});
    }
    std::ofstream out(path + ".slice" + std::to_string(s) + ".svg");
    out << render_svg_grid(box.width, box.height, rects);
  }
  std::cout << "wrote " << placement_path << " and " << slices.size()
            << " slice SVGs\n";
  return 0;
}
