// assay_compiler — a file-driven CLI for the whole flow: reads an assay
// description (io/assay_format.h), compiles it with the SynthesisPipeline
// (placer and router selectable by registry name), reports area/FTI,
// writes the placement and SVG figures.
//
//   $ ./examples/assay_compiler                      # built-in demo
//   $ ./examples/assay_compiler my.assay 30          # file + beta
//   $ ./examples/assay_compiler my.assay 30 greedy   # + placer name
//   $ ./examples/assay_compiler my.assay 30 greedy negotiated  # + router
//
// If the input file does not exist, the paper's PCR assay is written to
// it first, so `assay_compiler pcr.assay` is self-bootstrapping.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "assay/pipeline.h"
#include "io/assay_format.h"
#include "util/svg.h"

int main(int argc, char** argv) {
  using namespace dmfb;

  const std::string path = argc >= 2 ? argv[1] : "pcr.assay";
  const double beta = argc >= 3 ? std::atof(argv[2]) : 30.0;
  const std::string placer_name = argc >= 4 ? argv[3] : "two-stage";
  const std::string router_name = argc >= 5 ? argv[4] : "prioritized";
  const ModuleLibrary library = ModuleLibrary::standard();

  // Bootstrap: write the PCR demo if the input is missing.
  {
    std::ifstream probe(path);
    if (!probe) {
      std::ofstream out(path);
      write_assay(out, pcr_mixing_assay());
      std::cout << "wrote demo assay to " << path << '\n';
    }
  }

  AssayCase assay;
  try {
    std::ifstream in(path);
    assay = read_assay(in, library);
  } catch (const ParseError& e) {
    std::cerr << path << ": " << e.what() << '\n';
    return 1;
  }
  std::cout << "assay '" << assay.name << "': "
            << assay.graph.operation_count() << " operations, "
            << assay.binding.size() << " bound modules\n";

  PipelineOptions options;
  options.placer = placer_name;
  options.router = router_name;
  options.placer_context.two_stage_beta = beta;
  options.observer = [](PipelineStage stage, double seconds,
                        const std::string& detail) {
    std::cout << "  [" << stage << "] " << detail << " (" << seconds
              << " s)\n";
  };
  PipelineResult result;
  try {
    result = SynthesisPipeline(options).run(assay);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << '\n';
    return 1;
  }
  const Placement& placement = result.placement.placement;
  std::cout << "placement (placer=" << placer_name << ", beta=" << beta
            << "): " << result.cost().area_cells << " cells ("
            << result.cost().area_mm2() << " mm^2), FTI "
            << result.fti.fti() << '\n';

  // Artifacts: placement file + one SVG per slice.
  const std::string placement_path = path + ".placement";
  {
    std::ofstream out(placement_path);
    write_placement(out, placement);
  }
  const Rect box = placement.bounding_box();
  const auto& slices = placement.slice_members();
  for (std::size_t s = 0; s < slices.size(); ++s) {
    std::vector<SvgRect> rects;
    for (const int index : slices[s]) {
      const auto& m = placement.module(index);
      Rect fp = m.footprint();
      fp.x -= box.x;
      fp.y -= box.y;
      rects.push_back(
          SvgRect{fp, m.label, palette_color(static_cast<std::size_t>(index))});
    }
    std::ofstream out(path + ".slice" + std::to_string(s) + ".svg");
    out << render_svg_grid(box.width, box.height, rects);
  }
  std::cout << "wrote " << placement_path << " and " << slices.size()
            << " slice SVGs\n";
  return 0;
}
