// pcr_fault_recovery — the paper's fault-tolerance story, end to end:
// an electrode fails under a running mixer, the on-line test droplet
// localizes it, partial reconfiguration relocates the module into a
// maximal empty rectangle, and the assay resumes and completes.
//
//   $ ./examples/pcr_fault_recovery [fault_x fault_y]
#include <cstdlib>
#include <iostream>

#include "assay/assay_library.h"
#include "assay/pipeline.h"
#include "core/reconfig.h"
#include "sim/fault.h"
#include "sim/recovery.h"
#include "sim/tester.h"

int main(int argc, char** argv) {
  using namespace dmfb;

  // Synthesize and place the PCR assay with fault tolerance in mind.
  const AssayCase assay = pcr_mixing_assay();
  PipelineOptions options;
  options.placer = "two-stage";
  options.placer_context.two_stage_beta = 40.0;
  options.plan_droplet_routes = false;
  const PipelineResult compiled = SynthesisPipeline(options).run(assay);
  const Placement& placement = compiled.placement.placement;
  const Rect array = placement.bounding_box();
  std::cout << "fault-aware placement: " << array.width << "x" << array.height
            << " cells, FTI " << compiled.fti.fti() << '\n';

  // Choose the failing electrode: argv, or the center of the first mixer.
  Point fault;
  if (argc == 3) {
    fault = Point{std::atoi(argv[1]), std::atoi(argv[2])};
  } else {
    const Rect fp = placement.module(0).footprint();
    fault = Point{fp.x + fp.width / 2, fp.y + fp.height / 2};
  }
  std::cout << "injecting fault at (" << fault.x << ", " << fault.y << ")\n";

  // 1. Detection: walk a test droplet over the (idle) array.
  Chip chip(array.right(), array.top());
  inject_fault(chip, fault);
  const OnlineTester tester;
  const auto detection = tester.run_test(
      chip, Matrix<std::uint8_t>(chip.width(), chip.height(), 0),
      Point{0, 0});
  if (detection.fault_detected) {
    std::cout << "test droplet stalled after " << detection.steps_taken
              << " steps -> faulty electrode localized at ("
              << detection.faulty_cell.x << ", " << detection.faulty_cell.y
              << ")\n";
  } else {
    std::cout << "test droplet covered " << detection.cells_visited
              << " cells without stalling (fault on an unused cell)\n";
  }

  // 2 + 3. Reconfigure and resume, in one call.
  const Reconfigurator reconfigurator;
  const OnlineRecoveryResult recovery = simulate_online_recovery(
      assay.graph, compiled.schedule, placement, fault, array,
      reconfigurator);

  if (!recovery.fault_hit) {
    std::cout << "assay unaffected by the fault; completed normally\n";
    return 0;
  }
  std::cout << "assay stalled: " << recovery.first_run.failure_reason << '\n';
  if (!recovery.recovered) {
    std::cout << "partial reconfiguration FAILED: " << recovery.detail
              << "\n(this cell is not C-covered; see the FTI above)\n";
    return 1;
  }
  for (const auto& relocation : recovery.reconfiguration.relocations) {
    std::cout << "relocated " << relocation.module_label << " from ("
              << relocation.old_anchor.x << ", " << relocation.old_anchor.y
              << ") to (" << relocation.new_anchor.x << ", "
              << relocation.new_anchor.y << ") inside MER "
              << to_string(relocation.target_mer)
              << (relocation.new_rotated != relocation.old_rotated
                      ? " (rotated)"
                      : "")
              << ", droplet migration distance "
              << relocation.move_distance << " cells\n";
  }
  std::cout << (recovery.completed
                    ? "assay completed after partial reconfiguration\n"
                    : "assay still failing: " + recovery.detail + "\n");
  return recovery.completed ? 0 : 1;
}
