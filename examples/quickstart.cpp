// quickstart — the whole flow on one page.
//
// Builds the paper's PCR mixing-stage assay, runs architectural-level
// synthesis (binding + scheduling), places the modules with the two-stage
// fault-aware annealer, evaluates the Fault Tolerance Index, and executes
// the assay droplet-by-droplet on a simulated chip.
//
//   $ ./examples/quickstart
#include <iostream>

#include "assay/assay_library.h"
#include "assay/synthesis.h"
#include "core/fti.h"
#include "core/two_stage_placer.h"
#include "sim/simulator.h"

int main() {
  using namespace dmfb;

  // 1. Behavioural model + architectural-level synthesis.
  //    pcr_mixing_assay() carries the paper's Table 1 resource binding and
  //    its scheduling constraint (at most two concurrent mixers).
  const AssayCase assay = pcr_mixing_assay();
  const SynthesisResult synth = synthesize_with_binding(
      assay.graph, assay.binding, assay.scheduler_options);
  std::cout << "assay '" << assay.graph.name() << "': "
            << assay.graph.operation_count() << " operations, makespan "
            << synth.makespan_s << " s\n";

  // 2. Physical design: two-stage placement (area-minimizing simulated
  //    annealing, then low-temperature refinement for fault tolerance).
  TwoStageOptions options;
  options.beta = 30.0;  // importance of fault tolerance vs area
  const TwoStageOutcome placement = place_two_stage(synth.schedule, options);

  const FtiResult fti = evaluate_fti(placement.stage2.placement);
  std::cout << "placed on a " << fti.array.width << "x" << fti.array.height
            << " array: " << placement.stage2.cost.area_mm2()
            << " mm^2, FTI " << fti.fti() << "\n\n"
            << placement.stage2.placement.render() << '\n';

  // 3. Execute the assay on a simulated electrowetting chip.
  const Chip chip(placement.stage2.placement.canvas_width(),
                  placement.stage2.placement.canvas_height());
  const Simulator simulator;
  const SimulationResult run = simulator.run(
      assay.graph, synth.schedule, placement.stage2.placement, chip);

  if (!run.success) {
    std::cerr << "simulation failed: " << run.failure_reason << '\n';
    return 1;
  }
  std::cout << "assay completed in " << run.makespan_s << " s; "
            << run.routes_planned << " droplet routes, "
            << run.route_cells << " cells travelled\n";

  // The final droplet (output of root mixer M7) holds all 8 reagents.
  for (const auto& [op, droplet] : run.op_outputs) {
    if (assay.graph.operation(op).label != "M7") continue;
    std::cout << "final droplet (" << droplet.volume_nl() << " nl):\n";
    for (const auto& [reagent, fraction] : droplet.contents()) {
      std::cout << "  " << reagent << ": " << fraction * 100.0 << "%\n";
    }
  }
  return 0;
}
