// quickstart — the whole flow on one page, through the unified API.
//
// Builds the paper's PCR mixing-stage assay and hands it to the
// SynthesisPipeline, which runs architectural-level synthesis (binding +
// scheduling), two-stage fault-aware placement, concurrent droplet
// routing, and droplet-by-droplet execution on a simulated chip. The
// placement backend is picked by name from the PlacerRegistry.
//
//   $ ./examples/quickstart
#include <iostream>

#include "assay/assay_library.h"
#include "assay/pipeline.h"

int main() {
  using namespace dmfb;

  // 1. Configure the pipeline: any registered placer works here.
  std::cout << "available placers:";
  for (const auto& name : registered_placers()) std::cout << ' ' << name;
  std::cout << '\n';

  PipelineOptions options;
  options.placer = "two-stage";                  // fault-aware annealing
  options.placer_context.two_stage_beta = 30.0;  // fault tolerance vs area
  options.simulate = true;
  options.observer = [](PipelineStage stage, double seconds,
                        const std::string& detail) {
    std::cout << "  [" << stage << "] " << detail << " (" << seconds
              << " s)\n";
  };

  // 2. Run it end-to-end on the paper's PCR case study (Table 1 binding,
  //    at most two concurrent mixers).
  const SynthesisPipeline pipeline(options);
  const PipelineResult result = pipeline.run(pcr_mixing_assay());

  std::cout << "\nassay '" << result.assay_name << "': "
            << result.binding.size() << " bound operations, makespan "
            << result.transport_makespan_s << " s (incl. transport)\n"
            << "placed on a " << result.fti.array.width << "x"
            << result.fti.array.height << " array: "
            << result.cost().area_mm2() << " mm^2, FTI " << result.fti.fti()
            << "\n\n"
            << result.placement.placement.render() << '\n';

  if (!result.simulation.success) {
    std::cerr << "simulation failed: " << result.simulation.failure_reason
              << '\n';
    return 1;
  }
  std::cout << "assay completed in " << result.simulation.makespan_s
            << " s; " << result.simulation.routes_planned
            << " droplet routes, " << result.simulation.route_cells
            << " cells travelled\n";

  // The final droplet (output of root mixer M7) holds all 8 reagents.
  const AssayCase assay = pcr_mixing_assay();
  for (const auto& [op, droplet] : result.simulation.op_outputs) {
    if (assay.graph.operation(op).label != "M7") continue;
    std::cout << "final droplet (" << droplet.volume_nl() << " nl):\n";
    for (const auto& [reagent, fraction] : droplet.contents()) {
      std::cout << "  " << reagent << ": " << fraction * 100.0 << "%\n";
    }
  }
  return 0;
}
